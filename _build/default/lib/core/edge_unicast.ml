open Wnet_graph

type t = {
  src : int;
  dst : int;
  path_nodes : int array;
  path_edges : int array;
  dist : float;
  payments : float array;
}

type algo = Naive | Fast

let run ?(algo = Fast) g ~src ~dst =
  let res =
    match algo with
    | Fast -> Edge_avoid.replacement_costs_fast g ~src ~dst
    | Naive -> Edge_avoid.replacement_costs_naive g ~src ~dst
  in
  Option.map
    (fun (r : Edge_avoid.result) ->
      let payments = Array.make (Egraph.m g) 0.0 in
      Array.iteri
        (fun l e ->
          payments.(e) <-
            r.Edge_avoid.replacement.(l)
            -. (r.Edge_avoid.dist -. Egraph.weight g e))
        r.Edge_avoid.path_edges;
      {
        src;
        dst;
        path_nodes = r.Edge_avoid.path_nodes;
        path_edges = r.Edge_avoid.path_edges;
        dist = r.Edge_avoid.dist;
        payments;
      })
    res

let total_payment r = Array.fold_left ( +. ) 0.0 r.payments

let payment_to_edge r e = r.payments.(e)

let used r e = Array.exists (fun e' -> e' = e) r.path_edges

let utility r ~truth e =
  r.payments.(e) -. (if used r e then truth.(e) else 0.0)

let mechanism g ~src ~dst =
  Wnet_mech.Mechanism.make
    ~name:(Printf.sprintf "edge-unicast-vcg(%d->%d)" src dst)
    ~run:(fun d ->
      match run (Egraph.with_weights g d) ~src ~dst with
      | None -> None
      | Some r ->
        let used_mask = Array.make (Egraph.m g) false in
        Array.iter (fun e -> used_mask.(e) <- true) r.path_edges;
        Some ({ Wnet_mech.Vcg.cost = r.dist; used = used_mask }, r.payments))
    ~valuation:(fun e sol c -> if sol.Wnet_mech.Vcg.used.(e) then -.c else 0.0)
