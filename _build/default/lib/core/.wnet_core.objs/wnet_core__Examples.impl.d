lib/core/examples.ml: Graph List Wnet_graph
