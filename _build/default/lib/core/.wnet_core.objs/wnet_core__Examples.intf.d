lib/core/examples.mli: Wnet_graph
