lib/core/link_cost.ml: Array Digraph Dijkstra Float List Path Wnet_graph Wnet_prng
