lib/core/overpayment.ml: Array Float Hashtbl Link_cost List Option Unicast Wnet_graph
