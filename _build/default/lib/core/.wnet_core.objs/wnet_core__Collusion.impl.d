lib/core/collusion.ml: Array Dijkstra Float Graph List Path Unicast Wnet_graph
