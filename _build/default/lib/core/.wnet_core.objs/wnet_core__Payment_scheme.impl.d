lib/core/payment_scheme.ml: Array Dijkstra Graph List Path Printf Wnet_graph Wnet_mech
