lib/core/payment_scheme.mli: Wnet_graph Wnet_mech
