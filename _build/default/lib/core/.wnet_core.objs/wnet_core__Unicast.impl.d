lib/core/unicast.ml: Array Avoid Dijkstra Graph List Option Path Printf Wnet_graph Wnet_mech
