lib/core/overpayment.mli: Link_cost Unicast
