lib/core/edge_unicast.mli: Wnet_graph Wnet_mech
