lib/core/link_cost.mli: Wnet_graph Wnet_prng
