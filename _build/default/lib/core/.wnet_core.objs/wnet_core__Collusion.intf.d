lib/core/collusion.mli: Unicast Wnet_graph
