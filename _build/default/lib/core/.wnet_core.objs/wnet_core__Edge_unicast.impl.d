lib/core/edge_unicast.ml: Array Edge_avoid Egraph Option Printf Wnet_graph Wnet_mech
