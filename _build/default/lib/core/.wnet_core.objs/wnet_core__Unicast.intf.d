lib/core/unicast.mli: Wnet_graph Wnet_mech
