(** Overpayment metrics of Sec. III-G.

    VCG pays every relay more than its declared cost; these metrics
    quantify by how much, over a whole network where every node unicasts
    to the access point:

    - {b TOR} (Total Overpayment Ratio): [sum_i p_i / sum_i c(i, 0)] —
      total payment of all sources over the total cost of all LCPs;
    - {b IOR} (Individual Overpayment Ratio): [(1/n') sum_i p_i / c(i,0)]
      — the per-source ratio averaged over sources;
    - {b worst}: [max_i p_i / c(i, 0)].

    Sources whose LCP has no relay ([c(i,0) = 0], e.g. neighbours of the
    access point) are excluded from the per-source ratios and from both
    sums — their ratio is 0/0.  Sources with an [infinity] payment
    (monopoly relay; only possible on non-biconnected inputs) are
    excluded likewise and counted in [skipped]. *)

type sample = {
  source : int;
  payment : float;  (** total payment of this source to its relays *)
  lcp_cost : float;  (** cost of this source's LCP (relay cost) *)
  hops : int;  (** hop length of the LCP *)
}

type study = {
  tor : float;
  ior : float;
  worst : float;
  samples : sample list;  (** the samples actually used *)
  skipped : int;  (** sources excluded (zero-cost LCP or infinite payment) *)
}

val study : sample list -> study
(** Aggregates; with no usable sample the ratios are [nan]. *)

type hop_bucket = {
  hop : int;
  count : int;
  mean_ratio : float;
  max_ratio : float;
}

val by_hop : sample list -> hop_bucket list
(** Fig. 3(d)'s view: per-source overpayment ratio bucketed by the hop
    distance of the source to the destination, ascending. *)

val of_unicast : Unicast.t list -> sample list
(** Samples from node-cost mechanism outcomes. *)

val of_link_batch : Link_cost.batch -> sample list
(** Samples from a link-cost all-to-root batch (uses [relay_cost]). *)

val merge_studies : study list -> study
(** Pools the samples of several instances (the paper averages over 100
    random instances). *)
