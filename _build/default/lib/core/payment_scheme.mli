(** The family of truthful payment schemes of Sections III-A and III-E.

    All schemes route along the least-cost path and differ only in what is
    removed from the graph when pricing node [v_k]:

    - {!Vcg}: remove [v_k] alone — the plain scheme of Sec. III-A
      (strategyproof, but a node can collude with a neighbour);
    - {!Neighbourhood}: remove the closed neighbourhood [N(v_k)] —
      Theorem 8's scheme: truthful for each node alone, and immune to the
      accomplice-inflation collusion Sec. III-E motivates (a node's
      payment no longer depends on {e any} neighbour's declaration, so a
      neighbour inflating its bid cannot raise it).  Reproduction note:
      the theorem's blanket "prevents any two neighbouring nodes from
      colluding" does {e not} extend to joint {e under}-bidding by two
      neighbouring relays that captures the route — our falsifier
      exhibits concrete gains (see EXPERIMENTS.md), which is consistent
      with the paper's own Theorem 7 impossibility;
    - {!Collusion_sets q}: remove [Q(v_k)] for an arbitrary user-supplied
      collusion structure [q] with [v_k ∈ Q(v_k)] — the generalization at
      the end of Sec. III-E.

    In Groves form the payment to [v_k] is
    [p̃^k = ||P_{-Q(v_k)}|| - ||P|| + x_k d_k] where [x_k] indicates
    whether [v_k] relays: the pivot term [||P_{-Q(v_k)}||] depends on no
    declaration inside [Q(v_k)], which is what kills intra-set collusion.
    Note a node {e off} the path can receive a positive payment when a
    member of its set is on it (the paper points this out explicitly).

    Endpoints are never removed: the source and destination are the
    transacting parties, not colluding relays. *)

type scheme =
  | Vcg
  | Neighbourhood
  | Collusion_sets of (int -> int list)
      (** [q k] lists the nodes [v_k] may collude with; [k] itself is
          added implicitly. *)

type t = {
  scheme_used : scheme;
  src : int;
  dst : int;
  path : Wnet_graph.Path.t;
  lcp_cost : float;
  payments : float array;
      (** payment to every node; [infinity] when removing that node's set
          disconnects [src] from [dst]. *)
}

val run : scheme -> Wnet_graph.Graph.t -> src:int -> dst:int -> t option
(** [None] when [dst] is unreachable from [src].  Payments of nodes whose
    set removal leaves the pair connected are finite; the caller can check
    feasibility up front with
    {!Wnet_graph.Connectivity.neighbourhood_resilient}. *)

val total_payment : t -> float

val payment_to : t -> int -> float

val utility : t -> truth:float array -> int -> float
(** True utility of node [k] under the outcome: payment minus true cost
    if it relays. *)

val mechanism :
  scheme -> Wnet_graph.Graph.t -> src:int -> dst:int ->
  Wnet_mech.Vcg.solution Wnet_mech.Mechanism.t
(** Direct-revelation wrapper over declared profiles, for property
    checking (including the pairwise-collusion falsifier). *)

val removal_set : scheme -> Wnet_graph.Graph.t -> src:int -> dst:int -> int -> int list
(** The set actually removed when pricing node [k] (endpoints filtered
    out); exposed for tests. *)
