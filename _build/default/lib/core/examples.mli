(** The paper's worked examples as library values.

    The figures in the paper specify behaviour (payments, manipulations)
    more precisely than topology, so these are {e reconstructions}: graphs
    built to reproduce the published numbers where the text pins them
    down, documented where it does not.  They double as fixtures for the
    test suite and the bench harness. *)

(** {1 Figure 2 — lying about neighbourhood (Sec. III-D)} *)

type fig2 = {
  graph : Wnet_graph.Graph.t;
  source : int;  (** [v_1] *)
  access_point : int;  (** [v_0] *)
  hidden_edge : int * int;
      (** the source-incident edge the liar conceals ([v_1, v_4]) *)
  lying_graph : Wnet_graph.Graph.t;  (** the graph with that edge hidden *)
}

val fig2 : fig2
(** Honest behaviour: LCP [v1-v4-v3-v2-v0] with relay costs 1 each;
    payments 2 to each of the three relays, total 6 — the paper's
    numbers.  After hiding [v1-v4] the LCP becomes [v1-v5-v0] and the
    total payment drops to 5, also the paper's number: the least cost
    path is not the path you pay least for.  (One extra backup node is
    added relative to the paper's drawing so that every payment in the
    lying network stays finite; the published payments are unaffected.) *)

(** {1 Figure 4 — resale-the-path collusion (Sec. III-H)} *)

type fig4 = {
  graph : Wnet_graph.Graph.t;
  access_point : int;  (** [v_0] *)
  reseller : int;  (** [v_8], the over-paying source *)
  proxy : int;  (** [v_4], the neighbour it resells through *)
}

val fig4 : fig4
(** Reconstruction matching the pinned values [p_8 = 20], [c_4 = 5],
    [p_8^4 = 0]: [v_8]'s honest total payment is 20, while routing
    through neighbour [v_4] (whose own total payment is 9) costs
    [9 + max(0, 5) = 14], saving 6 to split.  The paper's drawing yields
    [p_4 = 6] and a saving of 9; the exact intermediate numbers depend on
    topology the text does not specify, but the phenomenon and all the
    constraints stated in the text are reproduced. *)

(** {1 Small hand-checked pricing instance} *)

val diamond : Wnet_graph.Graph.t
(** Four nodes: [0 -- 1 -- 3] and [0 -- 2 -- 3] with costs
    [c_1 = 1, c_2 = 3].  LCP(3 -> 0) = [3; 1; 0], payment to node 1 is
    [1 + (3 - 1) = 3].  The smallest instance where every quantity is
    checkable by hand. *)
