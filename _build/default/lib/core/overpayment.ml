type sample = { source : int; payment : float; lcp_cost : float; hops : int }

type study = {
  tor : float;
  ior : float;
  worst : float;
  samples : sample list;
  skipped : int;
}

let usable s = s.lcp_cost > 0.0 && Float.is_finite s.payment

let study all =
  let samples = List.filter usable all in
  let skipped = List.length all - List.length samples in
  match samples with
  | [] -> { tor = nan; ior = nan; worst = nan; samples; skipped }
  | _ ->
    let total_p = List.fold_left (fun a s -> a +. s.payment) 0.0 samples in
    let total_c = List.fold_left (fun a s -> a +. s.lcp_cost) 0.0 samples in
    let ratios = List.map (fun s -> s.payment /. s.lcp_cost) samples in
    let ior =
      List.fold_left ( +. ) 0.0 ratios /. float_of_int (List.length ratios)
    in
    let worst = List.fold_left Float.max neg_infinity ratios in
    { tor = total_p /. total_c; ior; worst; samples; skipped }

type hop_bucket = { hop : int; count : int; mean_ratio : float; max_ratio : float }

let by_hop all =
  let samples = List.filter usable all in
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun s ->
      let r = s.payment /. s.lcp_cost in
      let sum, mx, cnt =
        Option.value (Hashtbl.find_opt tbl s.hops) ~default:(0.0, neg_infinity, 0)
      in
      Hashtbl.replace tbl s.hops (sum +. r, Float.max mx r, cnt + 1))
    samples;
  Hashtbl.fold
    (fun hop (sum, mx, cnt) acc ->
      { hop; count = cnt; mean_ratio = sum /. float_of_int cnt; max_ratio = mx }
      :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.hop b.hop)

let of_unicast results =
  List.map
    (fun (r : Unicast.t) ->
      {
        source = r.Unicast.src;
        payment = Unicast.total_payment r;
        lcp_cost = r.Unicast.lcp_cost;
        hops = Wnet_graph.Path.hops r.Unicast.path;
      })
    results

let of_link_batch (b : Link_cost.batch) =
  Array.to_list b.Link_cost.results
  |> List.filter_map (fun r -> r)
  |> List.map (fun (r : Link_cost.t) ->
         {
           source = r.Link_cost.src;
           payment = Link_cost.total_payment r;
           lcp_cost = r.Link_cost.relay_cost;
           hops = Wnet_graph.Path.hops r.Link_cost.path;
         })

let merge_studies studies =
  let all = List.concat_map (fun s -> s.samples) studies in
  let skipped = List.fold_left (fun a s -> a + s.skipped) 0 studies in
  let merged = study all in
  { merged with skipped = merged.skipped + skipped }
