open Wnet_graph

type fig2 = {
  graph : Graph.t;
  source : int;
  access_point : int;
  hidden_edge : int * int;
  lying_graph : Graph.t;
}

(* v0 = access point, v1 = source.  Route A: v1-v4-v3-v2-v0 (relays cost
   1 each); route B: v1-v5-v0 (c5 = 4); route C: v1-v6-v0 (c6 = 5, the
   backup keeping payments finite after the lie). *)
let fig2 =
  let costs = [| 1.0; 1.0; 1.0; 1.0; 1.0; 4.0; 5.0 |] in
  let edges =
    [ (1, 4); (4, 3); (3, 2); (2, 0); (1, 5); (5, 0); (1, 6); (6, 0) ]
  in
  let hidden_edge = (1, 4) in
  let graph = Graph.create ~costs ~edges in
  let lying_graph =
    Graph.create ~costs ~edges:(List.filter (fun e -> e <> hidden_edge) edges)
  in
  { graph; source = 1; access_point = 0; hidden_edge; lying_graph }

type fig4 = {
  graph : Graph.t;
  access_point : int;
  reseller : int;
  proxy : int;
}

(* v8's LCP to v0 is v8-v6-v5-v0 (cost 4); removing either relay forces
   the v8-v4-v2-v0 detour (cost 12), so each relay is paid 10 and
   p_8 = 20 — the value the text pins down.  v4's own LCP is v4-v2-v0
   (cost 7, pivot 9 via v1), so p_4 = 9, and since v4 is off v8's LCP,
   p_8^4 = 0 with c_4 = 5.  Nodes v3 and v7 are the expensive backups
   visible in the paper's drawing. *)
let fig4 =
  let costs = [| 1.0; 9.0; 7.0; 25.0; 5.0; 2.0; 2.0; 30.0; 10.0 |] in
  let edges =
    [
      (8, 6); (6, 5); (5, 0);
      (8, 4); (4, 2); (2, 0); (4, 1); (1, 0);
      (8, 7); (7, 0);
      (4, 3); (3, 0);
    ]
  in
  { graph = Graph.create ~costs ~edges; access_point = 0; reseller = 8; proxy = 4 }

let diamond =
  Graph.create
    ~costs:[| 1.0; 1.0; 3.0; 1.0 |]
    ~edges:[ (0, 1); (1, 3); (0, 2); (2, 3) ]
