open Wnet_graph

type neighbour_boost = {
  relay : int;
  accomplice : int;
  boosted_bid : float;
  honest_pair_utility : float;
  boosted_pair_utility : float;
}

let pair_utility (r : Unicast.t) ~truth a b =
  Unicast.utility r ~truth a +. Unicast.utility r ~truth b

let find_neighbour_boost g ~src ~dst ~boost =
  if boost <= 0.0 then invalid_arg "Collusion.find_neighbour_boost: boost <= 0";
  let truth = Graph.costs g in
  match Unicast.run g ~src ~dst with
  | None -> None
  | Some honest ->
    let on_lcp = Array.make (Graph.n g) false in
    Array.iter (fun v -> on_lcp.(v) <- true) honest.Unicast.path;
    let try_relay k =
      (* The pivot path for relay k: the LCP once k is removed. *)
      let tree = Dijkstra.node_weighted ~forbidden:(fun v -> v = k) g ~source:src in
      match Dijkstra.path_to tree dst with
      | None -> None
      | Some pivot_path ->
        let candidates =
          Array.to_list (Path.relays pivot_path)
          |> List.filter (fun t -> (not on_lcp.(t)) && Graph.mem_edge g k t)
        in
        List.find_map
          (fun t ->
            let boosted_bid = Graph.cost g t +. boost in
            let g' = Graph.with_cost g t boosted_bid in
            match Unicast.run g' ~src ~dst with
            | None -> None
            | Some deviant ->
              let honest_u = pair_utility honest ~truth k t in
              let deviant_u = pair_utility deviant ~truth k t in
              if deviant_u > honest_u +. (1e-9 *. (1.0 +. Float.abs honest_u))
              then
                Some
                  {
                    relay = k;
                    accomplice = t;
                    boosted_bid;
                    honest_pair_utility = honest_u;
                    boosted_pair_utility = deviant_u;
                  }
              else None)
          candidates
    in
    List.find_map try_relay (Unicast.relays honest)

type resale = {
  source : int;
  proxy : int;
  direct_payment : float;
  proxy_payment : float;
  transfer : float;
  saving : float;
}

let resale_opportunities g ~root ~payments =
  let n = Graph.n g in
  let found = ref [] in
  for i = 0 to n - 1 do
    if i <> root then
      match payments i with
      | None -> ()
      | Some ri ->
        let p_i = Unicast.total_payment ri in
        if Float.is_finite p_i then
          Array.iter
            (fun j ->
              if j <> root && j <> i then
                match payments j with
                | None -> ()
                | Some rj ->
                  let p_j = Unicast.total_payment rj in
                  let transfer =
                    p_j +. Float.max (Unicast.payment_to ri j) (Graph.cost g j)
                  in
                  if Float.is_finite transfer && p_i > transfer +. 1e-9 then
                    found :=
                      {
                        source = i;
                        proxy = j;
                        direct_payment = p_i;
                        proxy_payment = p_j;
                        transfer;
                        saving = p_i -. transfer;
                      }
                      :: !found)
            (Graph.neighbors g i)
  done;
  List.sort (fun a b -> compare b.saving a.saving) !found

let effective_cost_after_resale r = r.transfer +. (r.saving /. 2.0)
