(** Summary statistics for experiment outputs. *)

type t = {
  count : int;
  mean : float;
  std : float;  (** sample standard deviation (n-1), 0 for a single point *)
  min : float;
  max : float;
  median : float;
  p90 : float;
  ci95 : float;  (** half-width of the normal-approximation 95% CI of the mean *)
}

val of_list : float list -> t
(** @raise Invalid_argument on an empty list. *)

val of_array : float array -> t

val percentile : float array -> float -> float
(** [percentile a q] for [q] in [\[0, 1\]], linear interpolation on the
    sorted copy.
    @raise Invalid_argument on empty input or out-of-range [q]. *)

val mean : float list -> float

val histogram : float array -> bins:int -> (float * float * int) list
(** [histogram a ~bins] splits [\[min a, max a\]] into [bins] equal-width
    buckets and returns [(lo, hi, count)] per bucket, ascending; the top
    bucket is closed on both ends.  Non-finite values are dropped.
    @raise Invalid_argument if [bins <= 0] or no finite value remains. *)

val pp : Format.formatter -> t -> unit
(** One-line [mean ± ci (min .. max)] rendering. *)
