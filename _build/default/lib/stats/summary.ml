type t = {
  count : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  median : float;
  p90 : float;
  ci95 : float;
}

let percentile a q =
  let n = Array.length a in
  if n = 0 then invalid_arg "Summary.percentile: empty";
  if q < 0.0 || q > 1.0 then invalid_arg "Summary.percentile: q out of range";
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let pos = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor pos) in
  let hi = int_of_float (Float.ceil pos) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = pos -. float_of_int lo in
    (sorted.(lo) *. (1.0 -. frac)) +. (sorted.(hi) *. frac)
  end

let of_array a =
  let n = Array.length a in
  if n = 0 then invalid_arg "Summary.of_array: empty";
  let sum = Array.fold_left ( +. ) 0.0 a in
  let mean = sum /. float_of_int n in
  let sq = Array.fold_left (fun acc x -> acc +. ((x -. mean) ** 2.0)) 0.0 a in
  let std = if n > 1 then sqrt (sq /. float_of_int (n - 1)) else 0.0 in
  {
    count = n;
    mean;
    std;
    min = Array.fold_left Float.min infinity a;
    max = Array.fold_left Float.max neg_infinity a;
    median = percentile a 0.5;
    p90 = percentile a 0.9;
    ci95 = 1.96 *. std /. sqrt (float_of_int n);
  }

let of_list l = of_array (Array.of_list l)

let mean l =
  match l with
  | [] -> nan
  | _ -> List.fold_left ( +. ) 0.0 l /. float_of_int (List.length l)

let histogram a ~bins =
  if bins <= 0 then invalid_arg "Summary.histogram: bins must be positive";
  let finite = Array.of_list (List.filter Float.is_finite (Array.to_list a)) in
  if Array.length finite = 0 then
    invalid_arg "Summary.histogram: no finite values";
  let lo = Array.fold_left Float.min infinity finite in
  let hi = Array.fold_left Float.max neg_infinity finite in
  let width = if hi > lo then (hi -. lo) /. float_of_int bins else 1.0 in
  let counts = Array.make bins 0 in
  Array.iter
    (fun x ->
      let b = int_of_float ((x -. lo) /. width) in
      let b = min (bins - 1) (max 0 b) in
      counts.(b) <- counts.(b) + 1)
    finite;
  List.init bins (fun b ->
      ( lo +. (float_of_int b *. width),
        lo +. (float_of_int (b + 1) *. width),
        counts.(b) ))

let pp ppf s =
  Format.fprintf ppf "%.4g ± %.2g (min %.4g, max %.4g, n=%d)" s.mean s.ci95
    s.min s.max s.count
