lib/stats/table.mli:
