type series = { label : char; points : (float * float) list }

let finite (x, y) = Float.is_finite x && Float.is_finite y

let render ?(width = 60) ?(height = 16) ~title series =
  let series =
    List.filter_map
      (fun s ->
        match List.filter finite s.points with
        | [] -> None
        | pts -> Some { s with points = pts })
      series
  in
  match series with
  | [] -> title ^ "\n  (no finite data points)"
  | _ ->
    let all = List.concat_map (fun s -> s.points) series in
    let xs = List.map fst all and ys = List.map snd all in
    let fold f = List.fold_left f in
    let xmin = fold Float.min infinity xs and xmax = fold Float.max neg_infinity xs in
    let ymin = fold Float.min infinity ys and ymax = fold Float.max neg_infinity ys in
    let xspan = if xmax > xmin then xmax -. xmin else 1.0 in
    let yspan = if ymax > ymin then ymax -. ymin else 1.0 in
    let grid = Array.make_matrix height width ' ' in
    List.iter
      (fun s ->
        List.iter
          (fun (x, y) ->
            let col =
              int_of_float ((x -. xmin) /. xspan *. float_of_int (width - 1))
            in
            let row =
              height - 1
              - int_of_float ((y -. ymin) /. yspan *. float_of_int (height - 1))
            in
            let row = max 0 (min (height - 1) row) in
            let col = max 0 (min (width - 1) col) in
            grid.(row).(col) <- s.label)
          s.points)
      series;
    let buf = Buffer.create ((height + 4) * (width + 12)) in
    Buffer.add_string buf title;
    Buffer.add_char buf '\n';
    Array.iteri
      (fun r line ->
        let yval =
          ymax -. (float_of_int r /. float_of_int (height - 1) *. yspan)
        in
        let ylabel =
          if r = 0 || r = height - 1 || r = (height - 1) / 2 then
            Printf.sprintf "%8.3g |" yval
          else Printf.sprintf "%8s |" ""
        in
        Buffer.add_string buf ylabel;
        Buffer.add_string buf (String.init width (fun c -> line.(c)));
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (Printf.sprintf "%8s +%s\n" "" (String.make width '-'));
    Buffer.add_string buf
      (Printf.sprintf "%8s  x: %.4g .. %.4g   legend:" "" xmin xmax);
    List.iter
      (fun s -> Buffer.add_string buf (Printf.sprintf " [%c]" s.label))
      series;
    Buffer.contents buf
