(** Column-aligned plain-text tables for experiment reports. *)

type t

val make : headers:string list -> t
(** @raise Invalid_argument on an empty header list. *)

val add_row : t -> string list -> unit
(** @raise Invalid_argument if the arity differs from the headers. *)

val add_rowf : t -> float list -> unit
(** Convenience: formats every cell with ["%.4g"]. *)

val render : t -> string
(** Renders with a header separator, columns padded to content width. *)

val to_csv : t -> string
(** RFC-4180-ish CSV: header line then rows; cells containing commas,
    quotes or newlines are quoted with double-quote escaping. *)

val print : t -> unit
(** [render] to stdout followed by a newline. *)
