type t = { headers : string list; mutable rows : string list list }

let make ~headers =
  if headers = [] then invalid_arg "Table.make: no headers";
  { headers; rows = [] }

let add_row t row =
  if List.length row <> List.length t.headers then
    invalid_arg "Table.add_row: arity mismatch";
  t.rows <- row :: t.rows

let add_rowf t row = add_row t (List.map (Printf.sprintf "%.4g") row)

let render t =
  let rows = List.rev t.rows in
  let all = t.headers :: rows in
  let ncols = List.length t.headers in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init ncols width in
  let pad c s = s ^ String.make (List.nth widths c - String.length s) ' ' in
  let line row = String.concat "  " (List.mapi pad row) in
  let sep = String.concat "  " (List.map (fun w -> String.make w '-') widths) in
  String.concat "\n" ((line t.headers :: sep :: List.map line rows) : string list)

let print t = print_endline (render t)

let csv_cell s =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n') s
  in
  if not needs_quoting then s
  else begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let to_csv t =
  let line row = String.concat "," (List.map csv_cell row) in
  String.concat "\n" (line t.headers :: List.map line (List.rev t.rows))
