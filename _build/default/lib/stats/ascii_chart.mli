(** Minimal ASCII line charts, so the bench harness can print
    figure-shaped output (one chart per Figure 3 panel) without any
    plotting dependency. *)

type series = { label : char; points : (float * float) list }
(** A named series of [(x, y)] points; [label] is the plot glyph. *)

val render :
  ?width:int -> ?height:int -> title:string -> series list -> string
(** [render ~title series] draws all series on a shared grid (default
    60x16) with y-axis labels on the left, the x range noted underneath,
    and a legend line.  Series with no finite points are skipped; returns
    a note when nothing is drawable. *)
