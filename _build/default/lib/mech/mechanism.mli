(** Direct-revelation mechanisms (Sec. II-A).

    A mechanism maps a declared profile to an outcome and a payment
    vector.  Agent [i]'s utility under true cost [c_i] is
    [valuation i outcome c_i + payment_i]; in the unicast setting the
    valuation is [-c_i] when [i] relays and [0] otherwise, but the type is
    kept abstract in ['o] so the same property checkers work for every
    scheme in this repository (plain VCG, collusion-resistant variants,
    the link-cost model, the nuglet baseline). *)

type 'o t = {
  name : string;
  run : Profile.t -> ('o * float array) option;
      (** [run d] computes the outcome and the payment to every agent
          under declarations [d]; [None] when the instance is infeasible
          (e.g. no route exists). *)
  valuation : int -> 'o -> float -> float;
      (** [valuation i o c_i] is agent [i]'s intrinsic value [w^i(c_i, o)]
          for outcome [o] given its {e true} per-unit cost [c_i]. *)
}

val make :
  name:string ->
  run:(Profile.t -> ('o * float array) option) ->
  valuation:(int -> 'o -> float -> float) ->
  'o t

val utilities : 'o t -> truth:Profile.t -> declared:Profile.t -> float array option
(** [utilities m ~truth ~declared] runs the mechanism on [declared] and
    evaluates every agent's utility against [truth];
    [None] if the run is infeasible. *)

val utility : 'o t -> truth:Profile.t -> declared:Profile.t -> int -> float option
(** Single-agent convenience over {!utilities}. *)

val social_welfare : 'o t -> truth:Profile.t -> declared:Profile.t -> float option
(** Sum of true valuations of the chosen outcome (payments cancel out of
    welfare; they are transfers). *)
