(** Empirical checkers for the mechanism properties of Sec. II-A.

    These test, on concrete instances, the three constraints every
    strategyproof mechanism must satisfy — Incentive Compatibility,
    Individual Rationality — plus the [k = 2] case of the paper's
    [k]-agents strategyproofness (Definition 1): a coalition must not be
    able to raise its {e summed} utility by joint misreporting.

    They are falsifiers, not provers: an empty violation list on many
    random instances is evidence, a non-empty list is a concrete
    counter-example (this is how the repository demonstrates Theorem 7's
    impossibility and Fig. 2's manipulation). *)

type violation = {
  agents : (int * float) list;  (** deviating agents with their lies *)
  honest_total : float;  (** summed true utility of those agents when honest *)
  deviant_total : float;  (** summed true utility after the joint lie *)
}

val pp_violation : Format.formatter -> violation -> unit

val ic_violations :
  'o Mechanism.t ->
  truth:Profile.t ->
  candidates:(int * float) list ->
  violation list
(** [ic_violations m ~truth ~candidates] tries every single-agent lie
    [(i, b)] in [candidates] against honest play by everyone else and
    returns those that strictly improve agent [i]'s utility (beyond a 1e-9
    relative tolerance).  Infeasible runs count as utility 0 for a
    non-participant. *)

val random_ic_violations :
  Wnet_prng.Rng.t ->
  'o Mechanism.t ->
  truth:Profile.t ->
  trials:int ->
  lie_bound:float ->
  violation list
(** Draws [trials] random [(agent, lie)] pairs with lies uniform in
    [\[0, lie_bound)] plus the structured lies 0, [truth/2], [2*truth] and
    a large bid for a random agent each trial. *)

val ir_violations : 'o Mechanism.t -> truth:Profile.t -> (int * float) list
(** Agents whose truthful-play utility is negative: [(agent, utility)]. *)

val pair_collusion_violations :
  Wnet_prng.Rng.t ->
  'o Mechanism.t ->
  truth:Profile.t ->
  pairs:(int * int) list ->
  trials_per_pair:int ->
  lie_bound:float ->
  violation list
(** For each pair, tries [trials_per_pair] random joint lies and reports
    those that strictly increase the pair's summed utility — the
    2-agents-strategyproofness falsifier behind Theorem 7 and the
    Sec. III-E discussion. *)

val coalition_violations :
  Wnet_prng.Rng.t ->
  'o Mechanism.t ->
  truth:Profile.t ->
  coalitions:int list list ->
  trials_per_coalition:int ->
  lie_bound:float ->
  violation list
(** The general [k]-agents strategyproofness falsifier (Definition 1):
    for each listed coalition, tries random joint lies (mixing under- and
    over-bids, zero bids and effectively-infinite bids) and reports those
    that strictly raise the coalition's summed utility.  With a coalition
    of all agents but one it reproduces the paper's remark that true
    group strategyproofness is unattainable for unicast. *)

val pair_inflation_violations :
  Wnet_prng.Rng.t ->
  'o Mechanism.t ->
  truth:Profile.t ->
  pairs:(int * int) list ->
  trials_per_pair:int ->
  violation list
(** Like {!pair_collusion_violations} but restricted to {e upward} joint
    lies (each lie >= the agent's true cost).  This is the attack class
    the paper's Sec. III-E motivates — an off-path accomplice inflating
    its declaration to raise a relay's pivot — and the class the
    neighbourhood scheme [p̃] provably resists.  (Unrestricted joint
    lies can still gain under [p̃] by under-bidding to capture the
    route; see EXPERIMENTS.md — this is consistent with Theorem 7.) *)
