type t = float array

let check_bid b =
  if Float.is_nan b || b < 0.0 then
    invalid_arg "Profile: bids must be non-negative (infinity allowed)"

let validate p = Array.iter check_bid p

let deviate d i b =
  if i < 0 || i >= Array.length d then invalid_arg "Profile.deviate: agent out of range";
  check_bid b;
  let d' = Array.copy d in
  d'.(i) <- b;
  d'

let deviate_many d moves =
  let d' = Array.copy d in
  List.iter
    (fun (i, b) ->
      if i < 0 || i >= Array.length d then
        invalid_arg "Profile.deviate_many: agent out of range";
      check_bid b;
      d'.(i) <- b)
    moves;
  d'

let equal_up_to ~epsilon a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y ->
         (x = y)
         || Float.abs (x -. y) <= epsilon *. (1.0 +. Float.max (Float.abs x) (Float.abs y)))
       a b

let pp ppf p =
  Format.fprintf ppf "[";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf "; ";
      Format.fprintf ppf "%g" x)
    p;
  Format.fprintf ppf "]"
