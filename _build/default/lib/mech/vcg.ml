type solution = { cost : float; used : bool array }

type problem = {
  n_agents : int;
  solve : Profile.t -> solution option;
  solve_without : int -> Profile.t -> solution option;
}

let clarke_payments p d =
  Profile.validate d;
  match p.solve d with
  | None -> None
  | Some sol ->
    let payments =
      Array.init p.n_agents (fun i ->
          if not sol.used.(i) then 0.0
          else
            match p.solve_without i d with
            | None -> infinity
            | Some without -> d.(i) +. without.cost -. sol.cost)
    in
    Some (sol, payments)

let mechanism ~name p =
  Mechanism.make ~name
    ~run:(fun d -> clarke_payments p d)
    ~valuation:(fun i sol c -> if sol.used.(i) then -.c else 0.0)
