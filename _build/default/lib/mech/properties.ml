type violation = {
  agents : (int * float) list;
  honest_total : float;
  deviant_total : float;
}

let pp_violation ppf v =
  Format.fprintf ppf "@[<h>coalition {";
  List.iteri
    (fun k (i, b) ->
      if k > 0 then Format.fprintf ppf ", ";
      Format.fprintf ppf "agent %d -> %g" i b)
    v.agents;
  Format.fprintf ppf "}: honest %.6g, deviant %.6g (gain %.6g)@]" v.honest_total
    v.deviant_total
    (v.deviant_total -. v.honest_total)

(* Strict improvement beyond floating-point noise. *)
let improves ~honest ~deviant =
  deviant > honest +. (1e-9 *. (1.0 +. Float.abs honest))

let coalition_total utilities agents =
  List.fold_left (fun acc (i, _) -> acc +. utilities.(i)) 0.0 agents

(* Utility of a coalition under a run that may be infeasible: an
   infeasible run means nobody routes and nobody pays, so utility 0. *)
let totals m ~truth ~declared agents =
  match Mechanism.utilities m ~truth ~declared with
  | None -> 0.0
  | Some u -> coalition_total u agents

let joint_violation m ~truth moves =
  let honest_total = totals m ~truth ~declared:truth moves in
  let declared = Profile.deviate_many truth moves in
  let deviant_total = totals m ~truth ~declared moves in
  if improves ~honest:honest_total ~deviant:deviant_total then
    Some { agents = moves; honest_total; deviant_total }
  else None

let ic_violations m ~truth ~candidates =
  List.filter_map
    (fun (i, b) -> joint_violation m ~truth [ (i, b) ])
    candidates

let random_ic_violations rng m ~truth ~trials ~lie_bound =
  let n = Array.length truth in
  if n = 0 then []
  else begin
    let candidates = ref [] in
    for _ = 1 to trials do
      let i = Wnet_prng.Rng.int rng n in
      candidates := (i, Wnet_prng.Rng.float rng lie_bound) :: !candidates;
      let j = Wnet_prng.Rng.int rng n in
      let structured =
        match Wnet_prng.Rng.int rng 4 with
        | 0 -> 0.0
        | 1 -> truth.(j) /. 2.0
        | 2 -> truth.(j) *. 2.0
        | _ -> lie_bound *. 100.0
      in
      candidates := (j, structured) :: !candidates
    done;
    ic_violations m ~truth ~candidates:!candidates
  end

let ir_violations m ~truth =
  match Mechanism.utilities m ~truth ~declared:truth with
  | None -> []
  | Some u ->
    let acc = ref [] in
    Array.iteri
      (fun i ui -> if ui < -1e-9 then acc := (i, ui) :: !acc)
      u;
    List.rev !acc

let coalition_violations rng m ~truth ~coalitions ~trials_per_coalition ~lie_bound =
  let lie k =
    match Wnet_prng.Rng.int rng 6 with
    | 0 -> 0.0
    | 1 -> truth.(k) /. 2.0
    | 2 -> truth.(k) *. (1.0 +. Wnet_prng.Rng.float rng 4.0)
    | 3 -> lie_bound *. 100.0
    | 4 -> truth.(k)
    | _ -> Wnet_prng.Rng.float rng lie_bound
  in
  List.concat_map
    (fun coalition ->
      let attempts = ref [] in
      for _ = 1 to trials_per_coalition do
        attempts := List.map (fun k -> (k, lie k)) coalition :: !attempts
      done;
      List.filter_map (joint_violation m ~truth) !attempts)
    coalitions

let pair_inflation_violations rng m ~truth ~pairs ~trials_per_pair =
  List.concat_map
    (fun (i, j) ->
      let attempts = ref [] in
      for _ = 1 to trials_per_pair do
        let lie k =
          match Wnet_prng.Rng.int rng 3 with
          | 0 -> truth.(k) *. (1.0 +. Wnet_prng.Rng.float rng 4.0)
          | 1 -> truth.(k) +. (100.0 *. (1.0 +. Wnet_prng.Rng.float rng 10.0))
          | _ -> truth.(k)
        in
        attempts := [ (i, lie i); (j, lie j) ] :: !attempts
      done;
      List.filter_map (joint_violation m ~truth) !attempts)
    pairs

let pair_collusion_violations rng m ~truth ~pairs ~trials_per_pair ~lie_bound =
  List.concat_map
    (fun (i, j) ->
      let attempts = ref [] in
      for _ = 1 to trials_per_pair do
        let lie k =
          match Wnet_prng.Rng.int rng 5 with
          | 0 -> 0.0
          | 1 -> truth.(k) /. 2.0
          | 2 -> truth.(k) *. (1.0 +. Wnet_prng.Rng.float rng 3.0)
          | 3 -> lie_bound *. 50.0
          | _ -> Wnet_prng.Rng.float rng lie_bound
        in
        attempts := [ (i, lie i); (j, lie j) ] :: !attempts;
        (* One-sided lies inside the coalition matter too: the helper
           sacrifices nothing while the beneficiary stays honest. *)
        attempts := [ (i, lie i); (j, truth.(j)) ] :: !attempts;
        attempts := [ (i, truth.(i)); (j, lie j) ] :: !attempts
      done;
      List.filter_map (joint_violation m ~truth) !attempts)
    pairs
