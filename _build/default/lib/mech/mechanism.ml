type 'o t = {
  name : string;
  run : Profile.t -> ('o * float array) option;
  valuation : int -> 'o -> float -> float;
}

let make ~name ~run ~valuation = { name; run; valuation }

let utilities m ~truth ~declared =
  match m.run declared with
  | None -> None
  | Some (outcome, payments) ->
    if Array.length payments <> Array.length truth then
      invalid_arg "Mechanism.utilities: payment vector has wrong length";
    Some
      (Array.mapi
         (fun i p -> m.valuation i outcome truth.(i) +. p)
         payments)

let utility m ~truth ~declared i =
  Option.map (fun u -> u.(i)) (utilities m ~truth ~declared)

let social_welfare m ~truth ~declared =
  match m.run declared with
  | None -> None
  | Some (outcome, _) ->
    let acc = ref 0.0 in
    Array.iteri (fun i c -> acc := !acc +. m.valuation i outcome c) truth;
    Some !acc
