(** The generalized Vickrey–Clarke–Groves mechanism (Sec. II-A) for
    cost-minimization problems with single-parameter agents.

    The problem supplies an optimal solver; the Clarke pivot rule then
    yields the payment
    [p^i = d_i * x_i + C(-i) - C], where [C] is the optimal social cost
    under declarations [d], [C(-i)] the optimum when agent [i] is excluded
    and [x_i] indicates whether [i] is part of the optimum.  Groves'
    theorem makes the result strategyproof; this module is the single
    place that rule is written down, and every payment scheme in the
    repository is either an instance of it or a deliberate variation
    (e.g. the neighbour-collusion scheme replaces "exclude [i]" with
    "exclude [N(i)]"). *)

type solution = {
  cost : float;  (** optimal social cost under the declared profile *)
  used : bool array;  (** [used.(i)]: is agent [i] part of the optimum? *)
}

type problem = {
  n_agents : int;
  solve : Profile.t -> solution option;
      (** optimal solution under a declared profile, [None] if infeasible *)
  solve_without : int -> Profile.t -> solution option;
      (** optimum when the given agent is excluded from participating *)
}

val clarke_payments : problem -> Profile.t -> (solution * float array) option
(** [clarke_payments p d] is the VCG outcome and payment vector:
    unused agents are paid 0; a used agent [i] receives
    [d_i + cost_without_i - cost].  When excluding a used agent makes the
    problem infeasible (a monopoly), its payment is [infinity] — callers
    guard with a biconnectivity check. *)

val mechanism : name:string -> problem -> solution Mechanism.t
(** Packages {!clarke_payments} as a {!Mechanism.t} whose valuation is
    [-c_i] when used, [0] otherwise. *)
