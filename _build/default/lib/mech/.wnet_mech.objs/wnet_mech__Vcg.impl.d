lib/mech/vcg.ml: Array Mechanism Profile
