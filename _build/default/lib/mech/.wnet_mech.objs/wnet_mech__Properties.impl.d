lib/mech/properties.ml: Array Float Format List Mechanism Profile Wnet_prng
