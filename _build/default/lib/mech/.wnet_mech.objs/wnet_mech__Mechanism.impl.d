lib/mech/mechanism.ml: Array Option Profile
