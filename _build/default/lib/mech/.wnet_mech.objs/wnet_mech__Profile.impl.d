lib/mech/profile.ml: Array Float Format List
