lib/mech/mechanism.mli: Profile
