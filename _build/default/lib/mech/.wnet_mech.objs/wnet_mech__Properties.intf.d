lib/mech/properties.mli: Format Mechanism Profile Wnet_prng
