lib/mech/vcg.mli: Mechanism Profile
