lib/mech/profile.mli: Format
