(** Cost profiles and deviations.

    A profile is the vector [d = (d_0, ..., d_{n-1})] of declared costs —
    the paper's [d], which may differ from the private true profile [c].
    The notation [d |^i b] (agent [i] deviates to [b], everyone else keeps
    their declaration) is the basic object of all strategyproofness
    statements, so it gets a first-class helper here. *)

type t = float array

val validate : t -> unit
(** @raise Invalid_argument if some entry is negative or NaN
    ([infinity] is allowed: "refuses to relay"). *)

val deviate : t -> int -> float -> t
(** [deviate d i b] is the fresh profile [d |^i b].
    @raise Invalid_argument on an out-of-range agent or invalid bid. *)

val deviate_many : t -> (int * float) list -> t
(** Simultaneous deviation by several agents (used for collusion tests).
    Later entries for the same agent win. *)

val equal_up_to : epsilon:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit
