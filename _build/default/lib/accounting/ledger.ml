type settlement = {
  session : int;
  source : int;
  debit : float;
  credits : (int * float) list;
}

type rejection =
  | Unsigned_initiation
  | Missing_acknowledgment
  | Insufficient_funds of float
  | Duplicate_session

type t = {
  balances : float array;
  seen_sessions : (int, unit) Hashtbl.t;
  mutable settled : settlement list;
  mutable rejected : (int * rejection) list;
}

let create ~n ~initial_balance =
  if n < 0 then invalid_arg "Ledger.create: negative node count";
  if initial_balance < 0.0 then invalid_arg "Ledger.create: negative balance";
  {
    balances = Array.make n initial_balance;
    seen_sessions = Hashtbl.create 64;
    settled = [];
    rejected = [];
  }

let balance t v = t.balances.(v)

let deposit t v amount =
  if amount < 0.0 then invalid_arg "Ledger.deposit: negative amount";
  t.balances.(v) <- t.balances.(v) +. amount

let reject t session reason =
  t.rejected <- (session, reason) :: t.rejected;
  Error reason

let settle t ~session ~outcome ~packets ~signed_by_source ~acknowledged =
  if Hashtbl.mem t.seen_sessions session then reject t session Duplicate_session
  else if not signed_by_source then reject t session Unsigned_initiation
  else if not acknowledged then reject t session Missing_acknowledgment
  else begin
    let source = outcome.Wnet_core.Unicast.src in
    let debit = Wnet_core.Unicast.session_charge outcome ~packets in
    if not (Float.is_finite debit) then
      reject t session (Insufficient_funds infinity)
    else if t.balances.(source) < debit then
      reject t session (Insufficient_funds (debit -. t.balances.(source)))
    else begin
      Hashtbl.add t.seen_sessions session ();
      let credits =
        Wnet_core.Unicast.relays outcome
        |> List.map (fun k ->
               (k, Wnet_core.Unicast.session_payment_to outcome ~packets k))
      in
      t.balances.(source) <- t.balances.(source) -. debit;
      List.iter (fun (k, c) -> t.balances.(k) <- t.balances.(k) +. c) credits;
      let s = { session; source; debit; credits } in
      t.settled <- s :: t.settled;
      Ok s
    end
  end

let settlements t = t.settled

let rejections t = t.rejected

let total_in_circulation t = Array.fold_left ( +. ) 0.0 t.balances
