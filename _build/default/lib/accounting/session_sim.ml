type principal = Honest | Free_rider | Deadbeat

type report = {
  ledger : Ledger.t;
  delivered : int;
  rejected_free_riding : int;
  rejected_unfunded : int;
  rejected_other : int;
  relay_income : float array;
}

let run rng g ~root ~sessions ~packets_per_session ~initial_balance ~principals =
  if sessions <= 0 then invalid_arg "Session_sim.run: sessions must be positive";
  if packets_per_session <= 0 then
    invalid_arg "Session_sim.run: packets must be positive";
  let n = Wnet_graph.Graph.n g in
  let ledger = Ledger.create ~n ~initial_balance in
  (* Deadbeats never fund their account beyond [initial_balance];
     everyone else is assumed solvent. *)
  for v = 0 to n - 1 do
    if principals v <> Deadbeat then Ledger.deposit ledger v 1_000_000.0
  done;
  let outcomes = Wnet_core.Unicast.all_to_root g ~root in
  let delivered = ref 0 in
  let free_riding = ref 0 and unfunded = ref 0 and other = ref 0 in
  let relay_income = Array.make n 0.0 in
  for session = 1 to sessions do
    let src = ref (Wnet_prng.Rng.int rng n) in
    while !src = root do
      src := Wnet_prng.Rng.int rng n
    done;
    match outcomes.(!src) with
    | None -> () (* disconnected: skipped *)
    | Some outcome ->
      let signed_by_source = principals !src <> Free_rider in
      let result =
        Ledger.settle ledger ~session ~outcome ~packets:packets_per_session
          ~signed_by_source ~acknowledged:true
      in
      (match result with
      | Ok s ->
        incr delivered;
        List.iter
          (fun (k, c) -> relay_income.(k) <- relay_income.(k) +. c)
          s.Ledger.credits
      | Error Ledger.Unsigned_initiation -> incr free_riding
      | Error (Ledger.Insufficient_funds s) when Float.is_finite s ->
        incr unfunded
      | Error (Ledger.Insufficient_funds _) ->
        (* infinite price: a monopoly relay, not a funding problem *)
        incr other
      | Error (Ledger.Missing_acknowledgment | Ledger.Duplicate_session) ->
        incr other)
  done;
  {
    ledger;
    delivered = !delivered;
    rejected_free_riding = !free_riding;
    rejected_unfunded = !unfunded;
    rejected_other = !other;
    relay_income;
  }

let income_matches_payments r =
  let expected = Array.make (Array.length r.relay_income) 0.0 in
  List.iter
    (fun (s : Ledger.settlement) ->
      List.iter
        (fun (k, c) -> expected.(k) <- expected.(k) +. c)
        s.Ledger.credits)
    (Ledger.settlements r.ledger);
  Array.for_all2
    (fun a b -> Float.abs (a -. b) <= 1e-6 *. (1.0 +. Float.abs a))
    expected r.relay_income
