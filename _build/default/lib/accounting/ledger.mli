(** Access-point ledger (Sec. III-H, "Where to pay").

    All payment transactions are settled at the access point: every node
    holds a secure account there; when the AP receives (and acknowledges)
    a session's data, it credits each relay on the least cost path with
    [packets * p^k] and debits the source by the same total.

    The ledger enforces the two countermeasures the paper describes:

    - a session is only settled against a {e source-signed} initiation
      (a node cannot repudiate traffic it originated — modelled as an
      explicit authorization token);
    - relays are only credited once the AP's {e signed acknowledgment}
      exists (no payment for undelivered traffic, which also disarms the
      free-riding attack: piggybacked data without an initiation token is
      not settled and is reported). *)

type t
(** Mutable ledger state. *)

type settlement = {
  session : int;  (** session identifier *)
  source : int;
  debit : float;  (** charged to the source *)
  credits : (int * float) list;  (** per-relay payments *)
}

type rejection =
  | Unsigned_initiation  (** no valid source authorization: free-riding attempt *)
  | Missing_acknowledgment  (** AP never confirmed delivery *)
  | Insufficient_funds of float  (** source balance below the debit; the shortfall *)
  | Duplicate_session  (** replayed session id *)

val create : n:int -> initial_balance:float -> t
(** [create ~n ~initial_balance] opens an account per node.
    @raise Invalid_argument if [n < 0] or the balance is negative. *)

val balance : t -> int -> float

val deposit : t -> int -> float -> unit
(** Top-up (e.g. out-of-band payment).
    @raise Invalid_argument on a negative amount. *)

val settle :
  t ->
  session:int ->
  outcome:Wnet_core.Unicast.t ->
  packets:int ->
  signed_by_source:bool ->
  acknowledged:bool ->
  (settlement, rejection) result
(** [settle t ~session ~outcome ~packets ~signed_by_source ~acknowledged]
    applies the charging rule for one delivered session routed along
    [outcome]: debit the source [packets * total_payment], credit each
    relay [packets * p^k].  Rejected settlements change no balance.
    Sessions with an infinite payment (monopoly relay) are rejected as
    [Insufficient_funds infinity]. *)

val settlements : t -> settlement list
(** Accepted settlements, newest first. *)

val rejections : t -> (int * rejection) list
(** Rejected [(session, reason)] pairs, newest first — the audit trail
    the paper's signature discipline exists to produce. *)

val total_in_circulation : t -> float
(** Sum of all balances — conserved by every settlement (payments are
    transfers). *)
