lib/accounting/session_sim.ml: Array Float Ledger List Wnet_core Wnet_graph Wnet_prng
