lib/accounting/session_sim.mli: Ledger Wnet_graph Wnet_prng
