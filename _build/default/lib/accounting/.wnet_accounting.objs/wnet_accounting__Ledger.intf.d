lib/accounting/ledger.mli: Wnet_core
