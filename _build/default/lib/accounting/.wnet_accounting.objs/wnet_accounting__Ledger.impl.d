lib/accounting/ledger.ml: Array Float Hashtbl List Wnet_core
