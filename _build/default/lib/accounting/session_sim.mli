(** Session-level traffic simulation over the ledger.

    Drives many sessions through a network: each session picks a source,
    computes its VCG outcome, and attempts settlement at the access
    point.  Misbehaving principals are modelled explicitly:

    - a {!Free_rider} piggybacks data without a signed initiation (the
      Sec. III-H attack): its sessions are rejected and logged;
    - a {!Deadbeat} signs but never holds funds: its sessions bounce
      with [Insufficient_funds] once its account is empty;
    - {!Honest} sources settle normally.

    The simulation demonstrates the paper's claim that the signature +
    acknowledgment discipline makes every attack {e detectable and
    unprofitable}: rejected sessions transfer no money, and the audit
    trail names the offender. *)

type principal =
  | Honest
  | Free_rider
  | Deadbeat

type report = {
  ledger : Ledger.t;
  delivered : int;  (** settled sessions *)
  rejected_free_riding : int;
  rejected_unfunded : int;  (** finite shortfalls: deadbeats *)
  rejected_other : int;
      (** incl. infinite prices (a monopoly relay on the source's LCP —
          a topology problem, not a funding one) *)
  relay_income : float array;  (** total credits per node *)
}

val run :
  Wnet_prng.Rng.t ->
  Wnet_graph.Graph.t ->
  root:int ->
  sessions:int ->
  packets_per_session:int ->
  initial_balance:float ->
  principals:(int -> principal) ->
  report
(** Random sources (uniform over non-root nodes) each attempt one
    session to [root].  Sources disconnected from the root are skipped
    (not counted).  [initial_balance] is what a {!Deadbeat} holds; all
    other principals are treated as solvent (topped up generously).
    @raise Invalid_argument on non-positive [sessions] or [packets]. *)

val income_matches_payments : report -> bool
(** Every relay's income equals the credits of the accepted settlements
    — the conservation check. *)
