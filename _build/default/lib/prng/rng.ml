type t = Splitmix64.t

let create seed = Splitmix64.create (Int64.of_int seed)

let of_state s = s

let split = Splitmix64.split

let copy = Splitmix64.copy

let float t bound = Splitmix64.next_float t *. bound

let float_range t lo hi =
  if lo > hi then invalid_arg "Rng.float_range: lo > hi";
  lo +. (Splitmix64.next_float t *. (hi -. lo))

let int t n = Splitmix64.next_below t n

let int_range t lo hi =
  if lo > hi then invalid_arg "Rng.int_range: lo > hi";
  lo + Splitmix64.next_below t (hi - lo + 1)

let bool t = Int64.logand (Splitmix64.next t) 1L = 1L

let bernoulli t p = Splitmix64.next_float t < p

let exponential t rate =
  if rate <= 0.0 then invalid_arg "Rng.exponential: rate must be positive";
  (* Inversion; 1 - u avoids log 0. *)
  -.log (1.0 -. Splitmix64.next_float t) /. rate

let gaussian t ~mean ~std =
  let u1 = 1.0 -. Splitmix64.next_float t in
  let u2 = Splitmix64.next_float t in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (std *. z)

let shuffle_in_place t a =
  for i = Array.length a - 1 downto 1 do
    let j = Splitmix64.next_below t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choose t a =
  if Array.length a = 0 then invalid_arg "Rng.choose: empty array";
  a.(Splitmix64.next_below t (Array.length a))

let sample_without_replacement t k a =
  let n = Array.length a in
  if k < 0 || k > n then invalid_arg "Rng.sample_without_replacement";
  let copy = Array.copy a in
  (* Partial Fisher–Yates: the first k slots end up a uniform sample. *)
  for i = 0 to k - 1 do
    let j = i + Splitmix64.next_below t (n - i) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp
  done;
  Array.sub copy 0 k
