(* SplitMix64 (Steele, Lea & Flood, "Fast splittable pseudorandom number
   generators", OOPSLA 2014).  The state advances by the golden gamma
   0x9E3779B97F4A7C15 and outputs are finalized with the MurmurHash3-style
   mix (variant "mix13" by Stafford). *)

type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let seed = next t in
  (* A second scrambling round decorrelates the child stream from the
     parent's future outputs. *)
  create (mix64 (Int64.logxor seed 0xD6E8FEB86659FD93L))

let next_float t =
  (* Top 53 bits give a uniform dyadic rational in [0, 1). *)
  let bits = Int64.shift_right_logical (next t) 11 in
  Int64.to_float bits *. 0x1p-53

let next_below t n =
  if n <= 0 then invalid_arg "Splitmix64.next_below: bound must be positive";
  let n64 = Int64.of_int n in
  (* Rejection sampling on the top bits for exact uniformity. *)
  let rec draw () =
    let bits = Int64.shift_right_logical (next t) 1 in
    let v = Int64.rem bits n64 in
    if Int64.sub bits v > Int64.sub Int64.max_int (Int64.sub n64 1L)
    then draw ()
    else Int64.to_int v
  in
  draw ()
