(** High-level random sampling built on {!Splitmix64}.

    Every randomized component of this repository takes an explicit [Rng.t]
    argument so that experiments are reproducible from a stated seed and so
    that independent sub-experiments can be given independent streams with
    {!split}.  [Stdlib.Random] is deliberately not used anywhere in the
    libraries. *)

type t
(** A mutable random stream. *)

val create : int -> t
(** [create seed] builds a stream from an integer seed. *)

val of_state : Splitmix64.t -> t
(** [of_state s] wraps an existing SplitMix64 state. *)

val split : t -> t
(** [split t] returns a statistically independent child stream, advancing
    [t].  Use one child per sub-experiment. *)

val copy : t -> t
(** [copy t] duplicates the stream state. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [\[0, bound)]. *)

val float_range : t -> float -> float -> float
(** [float_range t lo hi] draws uniformly from [\[lo, hi)].
    @raise Invalid_argument if [lo > hi]. *)

val int : t -> int -> int
(** [int t n] draws uniformly from [\[0, n)].
    @raise Invalid_argument if [n <= 0]. *)

val int_range : t -> int -> int -> int
(** [int_range t lo hi] draws uniformly from the inclusive range
    [\[lo, hi\]].
    @raise Invalid_argument if [lo > hi]. *)

val bool : t -> bool
(** [bool t] draws a fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val exponential : t -> float -> float
(** [exponential t rate] draws from Exp(rate) by inversion.
    @raise Invalid_argument if [rate <= 0]. *)

val gaussian : t -> mean:float -> std:float -> float
(** [gaussian t ~mean ~std] draws a normal variate (Box–Muller). *)

val shuffle_in_place : t -> 'a array -> unit
(** [shuffle_in_place t a] applies a Fisher–Yates shuffle to [a]. *)

val choose : t -> 'a array -> 'a
(** [choose t a] picks a uniform element.
    @raise Invalid_argument if [a] is empty. *)

val sample_without_replacement : t -> int -> 'a array -> 'a array
(** [sample_without_replacement t k a] returns [k] distinct elements of
    [a], uniformly.
    @raise Invalid_argument if [k < 0] or [k > Array.length a]. *)
