(** SplitMix64 pseudo-random number generator.

    A small, fast, well-studied 64-bit generator (Steele, Lea & Flood,
    OOPSLA 2014).  It is used here as the root source of randomness for all
    experiments because it is trivially seedable, has a cheap [split]
    operation giving statistically independent streams, and makes every
    simulation in this repository reproducible from a single integer seed.

    The generator state is a single [int64]; each [next] call advances the
    state by the golden-gamma constant and scrambles the result. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] builds a generator from a 64-bit seed.  Distinct seeds
    yield independent-looking streams. *)

val copy : t -> t
(** [copy t] is a generator that will produce the same future outputs as
    [t] without sharing state. *)

val next : t -> int64
(** [next t] draws the next 64 uniformly distributed bits. *)

val split : t -> t
(** [split t] advances [t] and returns a fresh generator whose stream is
    statistically independent of the remainder of [t]'s stream. *)

val next_float : t -> float
(** [next_float t] draws a uniform float in [\[0, 1)], using the top 53
    bits of [next t]. *)

val next_below : t -> int -> int
(** [next_below t n] draws a uniform integer in [\[0, n)].  Uses rejection
    sampling, so the result is exactly uniform.
    @raise Invalid_argument if [n <= 0]. *)
