type regime = Paid_vcg | Selfish | Fixed_price of float | Altruistic

type outcome = {
  regime : regime;
  sessions : int;
  delivered : int;
  blocked : int;
  first_death : int option;
  dead_at_end : int;
  residual_energy : float;
  payments_flow : float;
}

let willing regime g battery v =
  Battery.can_transmit battery v
  &&
  match regime with
  | Paid_vcg | Altruistic -> true
  | Selfish -> false
  | Fixed_price p -> Wnet_graph.Graph.cost g v <= p

let run rng g ~root ~budget ~sessions regime =
  if sessions <= 0 then invalid_arg "Lifetime_sim.run: sessions must be positive";
  let n = Wnet_graph.Graph.n g in
  let battery = Battery.create g ~budget in
  let delivered = ref 0 and blocked = ref 0 in
  let payments_flow = ref 0.0 in
  let first_death = ref None in
  let initial_alive = Battery.alive_count battery in
  for session = 1 to sessions do
    let src = ref (Wnet_prng.Rng.int rng n) in
    while !src = root do
      src := Wnet_prng.Rng.int rng n
    done;
    let src = !src in
    if not (Battery.can_transmit battery src) then incr blocked
    else begin
      (* Relays must be willing under the regime; the source and root are
         parties to the transaction and always participate. *)
      let forbidden v = v <> src && v <> root && not (willing regime g battery v) in
      let tree = Wnet_graph.Dijkstra.node_weighted ~forbidden g ~source:src in
      match Wnet_graph.Dijkstra.path_to tree root with
      | None -> incr blocked
      | Some path ->
        (* Everyone but the root transmits once. *)
        let ok = ref true in
        Array.iteri
          (fun i v ->
            if i < Array.length path - 1 && !ok then
              if not (Battery.spend_transmit battery v) then ok := false)
          path;
        if !ok then begin
          incr delivered;
          match regime with
          | Paid_vcg ->
            (* The source pays VCG prices computed on the network of
               currently willing nodes. *)
            let sub =
              Wnet_graph.Graph.remove_nodes g
                (List.filter
                   (fun v -> forbidden v)
                   (List.init n Fun.id))
            in
            (match Wnet_core.Unicast.run sub ~src ~dst:root with
            | Some r when Float.is_finite (Wnet_core.Unicast.total_payment r) ->
              payments_flow := !payments_flow +. Wnet_core.Unicast.total_payment r
            | Some _ | None -> ())
          | Fixed_price p ->
            payments_flow :=
              !payments_flow +. (p *. float_of_int (max 0 (Array.length path - 2)))
          | Selfish | Altruistic -> ()
        end
    end;
    if !first_death = None && Battery.alive_count battery < initial_alive then
      first_death := Some session
  done;
  {
    regime;
    sessions;
    delivered = !delivered;
    blocked = !blocked;
    first_death = !first_death;
    dead_at_end = List.length (Battery.dead_nodes battery);
    residual_energy = Battery.total_energy battery;
    payments_flow = !payments_flow;
  }

let compare_regimes rng g ~root ~budget ~sessions regimes =
  List.map
    (fun regime ->
      let child = Wnet_prng.Rng.copy rng in
      run child g ~root ~budget ~sessions regime)
    regimes
