type t = {
  graph : Wnet_graph.Graph.t;
  level : float array;
}

let create g ~budget =
  if budget < 0.0 then invalid_arg "Battery.create: negative budget";
  { graph = g; level = Array.make (Wnet_graph.Graph.n g) budget }

let create_heterogeneous g ~budgets =
  if Array.length budgets <> Wnet_graph.Graph.n g then
    invalid_arg "Battery.create_heterogeneous: length mismatch";
  Array.iter
    (fun b -> if b < 0.0 then invalid_arg "Battery.create_heterogeneous: negative")
    budgets;
  { graph = g; level = Array.copy budgets }

let remaining t v = t.level.(v)

let cost t v = Wnet_graph.Graph.cost t.graph v

let can_transmit t v = t.level.(v) >= cost t v

let alive = can_transmit

let spend_transmit t v =
  if can_transmit t v then begin
    t.level.(v) <- t.level.(v) -. cost t v;
    true
  end
  else false

let alive_count t =
  let count = ref 0 in
  for v = 0 to Array.length t.level - 1 do
    if alive t v then incr count
  done;
  !count

let dead_nodes t =
  let acc = ref [] in
  for v = Array.length t.level - 1 downto 0 do
    if not (alive t v) then acc := v :: !acc
  done;
  !acc

let total_energy t = Array.fold_left ( +. ) 0.0 t.level
