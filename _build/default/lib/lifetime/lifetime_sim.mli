(** Throughput-vs-lifetime simulation — the paper's opening motivation,
    quantified.

    Sessions arrive one at a time at random sources, each wanting one
    packet delivered to the access point; transmitting (as source or
    relay) drains the transmitter's battery by its per-packet cost.  The
    simulation runs until either a fixed horizon or total network death,
    under one of four cooperation regimes:

    - {!Paid_vcg}: the paper's world — every alive node relays (it is
      compensated above cost, so relaying is rational); routes follow the
      LCP among alive nodes;
    - {!Selfish}: nobody relays — only AP-adjacent sources ever deliver
      (the "reject all relay requests" outcome of Sec. I);
    - {!Fixed_price p}: a node relays iff its cost is at most [p]
      (the nuglet world);
    - {!Altruistic}: everyone relays but nobody is compensated — same
      delivery as [Paid_vcg] but relays burn their batteries for others
      (the traditional assumption the paper argues is untenable).

    Reported: packets delivered (throughput), the session index at which
    the first node dies, and residual energy.  The headline comparison:
    [Paid_vcg] matches [Altruistic] throughput while [Selfish] collapses
    — cooperation is worth paying for, and the mechanism makes it
    individually rational. *)

type regime =
  | Paid_vcg
  | Selfish
  | Fixed_price of float
  | Altruistic

type outcome = {
  regime : regime;
  sessions : int;  (** sessions attempted *)
  delivered : int;
  blocked : int;  (** no willing/alive route *)
  first_death : int option;  (** session index of the first node death *)
  dead_at_end : int;
  residual_energy : float;
  payments_flow : float;  (** total transfers from sources to relays *)
}

val run :
  Wnet_prng.Rng.t ->
  Wnet_graph.Graph.t ->
  root:int ->
  budget:float ->
  sessions:int ->
  regime ->
  outcome
(** @raise Invalid_argument on non-positive [sessions]. *)

val compare_regimes :
  Wnet_prng.Rng.t ->
  Wnet_graph.Graph.t ->
  root:int ->
  budget:float ->
  sessions:int ->
  regime list ->
  outcome list
(** Runs every regime on an identical session sequence (same seed). *)
