lib/lifetime/lifetime_sim.mli: Wnet_graph Wnet_prng
