lib/lifetime/lifetime_sim.ml: Array Battery Float Fun List Wnet_core Wnet_graph Wnet_prng
