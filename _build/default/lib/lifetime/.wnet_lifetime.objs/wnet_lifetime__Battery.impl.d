lib/lifetime/battery.ml: Array Wnet_graph
