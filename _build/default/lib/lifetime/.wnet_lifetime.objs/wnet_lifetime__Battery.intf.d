lib/lifetime/battery.mli: Wnet_graph
