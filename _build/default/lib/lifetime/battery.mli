(** Battery model for the lifetime simulations.

    The paper's motivation (Sec. I): relaying consumes the energy budget
    a user bought for their own traffic; without compensation a rational
    user stops relaying.  This module tracks per-node energy, where
    sending or relaying one packet costs the node its per-packet cost
    from the graph (the same quantity the mechanism prices). *)

type t

val create : Wnet_graph.Graph.t -> budget:float -> t
(** Every node starts with [budget] energy units.
    @raise Invalid_argument if [budget < 0]. *)

val create_heterogeneous : Wnet_graph.Graph.t -> budgets:float array -> t
(** Per-node budgets (e.g. laptops vs PDAs).
    @raise Invalid_argument on a length mismatch or a negative budget. *)

val remaining : t -> int -> float

val alive : t -> int -> bool
(** A node is alive while it can still afford to transmit one packet
    ([remaining >= its cost]). *)

val can_transmit : t -> int -> bool

val spend_transmit : t -> int -> bool
(** [spend_transmit t v] deducts [v]'s per-packet cost; [false] (and no
    deduction) if the battery cannot cover it. *)

val alive_count : t -> int

val dead_nodes : t -> int list

val total_energy : t -> float
