open Wnet_graph

type outcome = {
  price : float;
  participants : bool array;
  path : Path.t option;
  charge : float;
  social_cost : float;
}

(* Minimum-hop path from src to dst whose interior nodes all satisfy
   [allowed]; endpoints are always usable. *)
let min_hop_path g ~allowed ~src ~dst =
  let n = Graph.n g in
  let parent = Array.make n (-2) in
  parent.(src) <- -1;
  let q = Queue.create () in
  Queue.add src q;
  let found = ref false in
  while (not !found) && not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun w ->
        if parent.(w) = -2 && (w = dst || allowed w) then begin
          parent.(w) <- u;
          if w = dst then found := true else Queue.add w q
        end)
      (Graph.neighbors g u)
  done;
  if not !found then None
  else begin
    let rec up v acc = if v = src then v :: acc else up parent.(v) (v :: acc) in
    Some (Array.of_list (up dst []))
  end

let run g ~price ~src ~dst =
  if price < 0.0 then invalid_arg "Nuglet.run: negative price";
  let n = Graph.n g in
  if src < 0 || src >= n || dst < 0 || dst >= n || src = dst then
    invalid_arg "Nuglet.run: bad endpoints";
  let participants =
    Array.init n (fun v -> v = src || v = dst || Graph.cost g v <= price)
  in
  let path = min_hop_path g ~allowed:(fun v -> participants.(v)) ~src ~dst in
  match path with
  | None -> { price; participants; path; charge = nan; social_cost = infinity }
  | Some p ->
    let relays = Path.relays p in
    {
      price;
      participants;
      path;
      charge = price *. float_of_int (Array.length relays);
      social_cost = Path.relay_cost g p;
    }

let delivery_rate g ~price ~root =
  let n = Graph.n g in
  if n <= 1 then 1.0
  else begin
    let delivered = ref 0 in
    for src = 0 to n - 1 do
      if src <> root then begin
        let o = run g ~price ~src ~dst:root in
        if o.path <> None then incr delivered
      end
    done;
    float_of_int !delivered /. float_of_int (n - 1)
  end

type economy = {
  counters : float array;
  delivered : int;
  blocked : int;
  disconnected : int;
}

let simulate_sessions rng g ~root ~sessions ~initial =
  let n = Graph.n g in
  if n <= 1 then invalid_arg "Nuglet.simulate_sessions: trivial network";
  let counters = Array.make n initial in
  let delivered = ref 0 and blocked = ref 0 and disconnected = ref 0 in
  for _ = 1 to sessions do
    let src = ref (Wnet_prng.Rng.int rng n) in
    while !src = root do
      src := Wnet_prng.Rng.int rng n
    done;
    let src = !src in
    match min_hop_path g ~allowed:(fun _ -> true) ~src ~dst:root with
    | None -> incr disconnected
    | Some p ->
      let relays = Path.relays p in
      let fee = float_of_int (Array.length relays) in
      if counters.(src) < fee then incr blocked
      else begin
        counters.(src) <- counters.(src) -. fee;
        Array.iter (fun k -> counters.(k) <- counters.(k) +. 1.0) relays;
        incr delivered
      end
  done;
  { counters; delivered = !delivered; blocked = !blocked; disconnected = !disconnected }
