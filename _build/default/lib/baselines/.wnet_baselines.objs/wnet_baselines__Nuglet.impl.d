lib/baselines/nuglet.ml: Array Graph Path Queue Wnet_graph Wnet_prng
