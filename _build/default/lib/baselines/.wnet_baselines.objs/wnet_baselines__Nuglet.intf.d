lib/baselines/nuglet.mli: Wnet_graph Wnet_prng
