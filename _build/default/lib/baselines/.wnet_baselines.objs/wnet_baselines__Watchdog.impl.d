lib/baselines/watchdog.ml: Array Dijkstra Graph Path Wnet_graph Wnet_prng
