lib/baselines/naive_payment.ml: List Wnet_core
