lib/baselines/naive_payment.mli: Wnet_core Wnet_graph
