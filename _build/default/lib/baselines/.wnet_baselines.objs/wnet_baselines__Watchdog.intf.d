lib/baselines/watchdog.mli: Wnet_graph Wnet_prng
