open Wnet_graph

type kind = Selfish | Cooperative of int

type report = {
  labelled : bool array;
  wrongful : int;
  rightful : int;
  refusals : int;
  delivered : int;
  failed : int;
}

let run rng g ~kinds ~root ~sessions =
  let n = Graph.n g in
  if n <= 1 then invalid_arg "Watchdog.run: trivial network";
  let battery =
    Array.init n (fun v ->
        match kinds v with
        | Selfish -> 0
        | Cooperative b ->
          if b < 0 then invalid_arg "Watchdog.run: negative battery";
          b)
  in
  let labelled = Array.make n false in
  let refusals = ref 0 and delivered = ref 0 and failed = ref 0 in
  for _ = 1 to sessions do
    let src = ref (Wnet_prng.Rng.int rng n) in
    while !src = root do
      src := Wnet_prng.Rng.int rng n
    done;
    (* Pathrater: route around nodes already known to misbehave. *)
    let tree =
      Dijkstra.node_weighted
        ~forbidden:(fun v -> labelled.(v) && v <> !src && v <> root)
        (Graph.with_costs g (Array.make n 1.0))
        ~source:!src
    in
    match Dijkstra.path_to tree root with
    | None -> incr failed
    | Some p ->
      let relays = Path.relays p in
      let ok = ref true in
      Array.iter
        (fun k ->
          if !ok then begin
            let willing =
              match kinds k with
              | Selfish -> false
              | Cooperative _ -> battery.(k) > 0
            in
            if willing then battery.(k) <- battery.(k) - 1
            else begin
              (* The watchdog upstream overhears the drop. *)
              incr refusals;
              labelled.(k) <- true;
              ok := false
            end
          end)
        relays;
      if !ok then incr delivered else incr failed
  done;
  let wrongful = ref 0 and rightful = ref 0 in
  Array.iteri
    (fun v l ->
      if l then
        match kinds v with
        | Selfish -> incr rightful
        | Cooperative _ -> incr wrongful)
    labelled;
  {
    labelled;
    wrongful = !wrongful;
    rightful = !rightful;
    refusals = !refusals;
    delivered = !delivered;
    failed = !failed;
  }

let wrongful_fraction r =
  float_of_int r.wrongful /. float_of_int (max 1 (r.wrongful + r.rightful))
