(** The naive payment computation the paper's Algorithm 1 improves on:
    one full Dijkstra per relay on the least cost path,
    [O(n^2 log n + n m)] in the worst case (Sec. III-B).

    Functionally identical to [Wnet_core.Unicast.run ~algo:Naive]; kept
    as a named baseline so the benchmark harness can compare the two
    implementations symmetrically and so tests can cross-check the fast
    path against an independent entry point. *)

val run : Wnet_graph.Graph.t -> src:int -> dst:int -> Wnet_core.Unicast.t option

val operation_count : Wnet_graph.Graph.t -> src:int -> dst:int -> int
(** Number of single-source shortest-path computations the naive method
    performs (1 for the LCP + one per relay) — the quantity Algorithm 1
    reduces to a constant. *)
