let run g ~src ~dst = Wnet_core.Unicast.run ~algo:Wnet_core.Unicast.Naive g ~src ~dst

let operation_count g ~src ~dst =
  match Wnet_core.Unicast.run ~algo:Wnet_core.Unicast.Naive g ~src ~dst with
  | None -> 1
  | Some r -> 1 + List.length (Wnet_core.Unicast.relays r)
