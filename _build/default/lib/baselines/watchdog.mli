(** Watchdog / Pathrater baseline (Marti et al., the paper's ref [4]).

    Nodes observed refusing to forward are labelled "misbehaving" and
    routed around.  The paper's critique, which this module quantifies:
    the label ignores {e why} a node refused — a cooperative node whose
    battery cannot support more relaying is wrongfully labelled alongside
    genuinely selfish free-riders. *)

type kind =
  | Selfish  (** never relays *)
  | Cooperative of int
      (** relays until its battery budget (number of packets) runs out *)

type report = {
  labelled : bool array;  (** nodes the watchdog marked misbehaving *)
  wrongful : int;  (** cooperative nodes that got labelled *)
  rightful : int;  (** selfish nodes that got labelled *)
  refusals : int;  (** total refusals observed *)
  delivered : int;
  failed : int;  (** sessions that died at a refusing relay *)
}

val run :
  Wnet_prng.Rng.t ->
  Wnet_graph.Graph.t ->
  kinds:(int -> kind) ->
  root:int ->
  sessions:int ->
  report
(** Random sources send sessions to [root] along minimum-hop routes that
    avoid already-labelled nodes; each relay either forwards (consuming
    battery) or refuses and gets labelled, killing the session. *)

val wrongful_fraction : report -> float
(** [wrongful / max 1 (wrongful + rightful)]. *)
