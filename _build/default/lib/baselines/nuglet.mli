(** The nuglet / fixed-price baseline (Buttyán–Hubaux line of work, the
    schemes of the paper's refs [2, 3, 5, 6]).

    Every relay on a chosen path is paid a {e fixed} price (one nuglet);
    the source is charged one nuglet per relay.  The paper's critique,
    reproduced by this module:

    - if the nuglet has real monetary value, a rational node whose true
      relay cost exceeds the price simply refuses to relay, so delivery
      depends on the topology of the "cheap" nodes ({!run},
      {!delivery_rate});
    - if it does not, nodes that never originate traffic have no reason
      to relay at all;
    - with counter dynamics (relaying earns what sending spends), most
      transmissions being transit traffic means counters cannot stay
      balanced and sessions get blocked ({!simulate_sessions}). *)

type outcome = {
  price : float;
  participants : bool array;
      (** [participants.(v)]: would [v] relay at this price
          ([cost v <= price])?  Endpoints always participate. *)
  path : Wnet_graph.Path.t option;
      (** minimum-hop path whose relays all participate, [None] if the
          cheap subgraph disconnects the pair *)
  charge : float;  (** [price * relays] when deliverable, else [nan] *)
  social_cost : float;
      (** sum of the true costs of the chosen relays, [infinity] when
          undeliverable *)
}

val run : Wnet_graph.Graph.t -> price:float -> src:int -> dst:int -> outcome
(** One unicast under the fixed-price scheme with rational participation. *)

val delivery_rate : Wnet_graph.Graph.t -> price:float -> root:int -> float
(** Fraction of sources (all nodes but [root]) whose unicast to [root]
    is deliverable at this price. *)

type economy = {
  counters : float array;  (** final nuglet balances *)
  delivered : int;
  blocked : int;  (** sessions refused for lack of nuglets *)
  disconnected : int;  (** sessions with no usable route *)
}

val simulate_sessions :
  Wnet_prng.Rng.t ->
  Wnet_graph.Graph.t ->
  root:int ->
  sessions:int ->
  initial:float ->
  economy
(** Counter dynamics: random sources send one-packet sessions to [root]
    along the minimum-hop path; the source pays one nuglet per relay out
    of its counter (blocked when insufficient), each relay's counter
    gains one.  [initial] is the jump-start balance. *)
