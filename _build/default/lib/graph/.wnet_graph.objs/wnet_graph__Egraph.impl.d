lib/graph/egraph.ml: Array Float Hashtbl List
