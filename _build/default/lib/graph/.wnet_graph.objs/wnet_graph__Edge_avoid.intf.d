lib/graph/edge_avoid.mli: Dijkstra Egraph
