lib/graph/metrics.ml: Array Connectivity Format Graph Hashtbl List Option Queue
