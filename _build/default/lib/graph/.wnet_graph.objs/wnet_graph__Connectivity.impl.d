lib/graph/connectivity.ml: Array Graph List Queue Stack
