lib/graph/graph_io.mli: Digraph Graph
