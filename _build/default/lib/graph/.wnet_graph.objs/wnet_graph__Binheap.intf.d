lib/graph/binheap.mli:
