lib/graph/indexed_heap.ml: Array
