lib/graph/avoid.ml: Array Binheap Dijkstra Float Graph Indexed_heap List Path
