lib/graph/avoid.mli: Dijkstra Graph Path
