lib/graph/indexed_heap.mli:
