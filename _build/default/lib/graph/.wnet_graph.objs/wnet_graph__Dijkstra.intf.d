lib/graph/dijkstra.mli: Digraph Graph Path
