lib/graph/digraph.ml: Array Float Format Hashtbl List
