lib/graph/edge_avoid.ml: Array Binheap Dijkstra Egraph Indexed_heap List
