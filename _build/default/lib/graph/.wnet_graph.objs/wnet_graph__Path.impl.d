lib/graph/path.ml: Array Digraph Format Graph Hashtbl
