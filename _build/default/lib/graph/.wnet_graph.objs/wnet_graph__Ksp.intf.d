lib/graph/ksp.mli: Graph Path
