lib/graph/egraph.mli:
