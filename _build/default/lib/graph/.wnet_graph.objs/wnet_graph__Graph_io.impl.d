lib/graph/graph_io.ml: Array Buffer Digraph Graph List Printf String
