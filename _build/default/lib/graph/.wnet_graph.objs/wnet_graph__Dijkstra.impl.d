lib/graph/dijkstra.ml: Array Digraph Graph Indexed_heap List
