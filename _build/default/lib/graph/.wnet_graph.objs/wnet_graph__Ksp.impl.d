lib/graph/ksp.ml: Array Graph Hashtbl Indexed_heap List Path
