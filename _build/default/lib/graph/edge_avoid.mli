(** Edge-avoiding replacement paths — Hershberger–Suri / Malik–Mittal–Gupta
    for undirected edge-weighted graphs (the paper's refs [18], [8]).

    For the Nisan–Ronen edge-agent mechanism every edge [e_l] on the
    shortest path needs [d_{G - e_l}(src, dst)].  The classic algorithm
    computes all of them in one [O(m log m + n log n)] sweep: label every
    node [v] with [cut v] — the highest-index path edge on its
    shortest-path-tree branch (so removing [e_l] separates [v] from the
    source iff [cut v >= l]) — and take, for each [l], the cheapest
    non-tree edge [(u, w)] spanning the cut:

    [d_{G-e_l} = min { d_src u + w(u,w) + d_dst w  :  cut u < l <= cut w }].

    This is the {e edge} analogue of the node-weighted Algorithm 1 in
    {!Avoid}; the paper borrows its ideas from exactly this algorithm. *)

type result = {
  path_nodes : int array;  (** the LCP [src; ...; dst] *)
  path_edges : int array;  (** its edge ids, [path_edges.(l)] joining nodes [l] and [l+1] *)
  dist : float;  (** the LCP length *)
  replacement : float array;
      (** [replacement.(l)]: [d_{G - path_edges.(l)}(src, dst)];
          [infinity] when the edge is a bridge *)
}

val shortest_tree : Egraph.t -> source:int -> Dijkstra.tree
(** Edge-weighted Dijkstra over an {!Egraph} (deterministic ties). *)

val replacement_costs_fast : Egraph.t -> src:int -> dst:int -> result option
(** [None] when [dst] is unreachable.
    @raise Invalid_argument if [src = dst] or out of range. *)

val replacement_costs_naive : Egraph.t -> src:int -> dst:int -> result option
(** One Dijkstra per path edge with that edge priced at [infinity]; the
    validation baseline. *)
