(** Simple polymorphic binary min-heap on float keys.

    Unlike {!Indexed_heap}, entries are not unique and there is no
    decrease-key; this heap backs the lazy-deletion candidate queues of the
    fast payment algorithm (Algorithm 1, step 5), where each edge is pushed
    once and stale entries are discarded when popped. *)

type 'a t

val create : unit -> 'a t

val size : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> float -> 'a -> unit
(** [push h key v] inserts value [v] with priority [key]. *)

val peek_min : 'a t -> (float * 'a) option
(** Smallest-key entry, without removing it. *)

val pop_min : 'a t -> (float * 'a) option
(** Removes and returns the smallest-key entry. *)
