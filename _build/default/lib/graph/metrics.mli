(** Descriptive statistics of a topology, used to characterize
    experimental instances (density, hop diameter, path lengths). *)

type t = {
  nodes : int;
  edges : int;
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  components : int;
  largest_component : int;
  hop_diameter : int;
      (** max over reachable pairs of the minimum hop count; 0 for
          graphs with no edges, computed within components *)
  mean_hop_distance : float;
      (** mean over distinct reachable pairs; [nan] if none *)
  biconnected : bool;
}

val compute : Graph.t -> t
(** Exact (all-pairs BFS): O(n (n + m)); fine up to a few thousand
    nodes. *)

val degree_histogram : Graph.t -> (int * int) list
(** [(degree, count)] ascending. *)

val pp : Format.formatter -> t -> unit
