(** Plain-text graph format, for the command-line tools.

    Format, one declaration per line ([#] starts a comment):
    {v
    node <id> <cost>
    edge <u> <v>
    link <u> <v> <weight>
    v}

    [node]/[edge] lines describe a node-cost graph (Sec. II-B); [node]
    (with cost ignored or 0) plus [link] lines describe a directed
    link-cost graph (Sec. III-F).  Node ids must be [0 .. n-1]; a [node]
    line may be omitted for ids that appear only in edges (cost defaults
    to 0). *)

val parse : string -> Graph.t
(** [parse text] reads the node-cost format.
    @raise Failure with a line-numbered message on malformed input. *)

val parse_digraph : string -> Digraph.t
(** [parse_digraph text] reads the link-cost format ([link] lines;
    [edge u v] is accepted as a 0-weight pair of links). *)

val parse_file : string -> Graph.t
(** [parse] on a file's contents. *)

val parse_digraph_file : string -> Digraph.t

val to_string : Graph.t -> string
(** Round-trippable rendering of a node-cost graph. *)
