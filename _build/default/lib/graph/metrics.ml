type t = {
  nodes : int;
  edges : int;
  min_degree : int;
  max_degree : int;
  mean_degree : float;
  components : int;
  largest_component : int;
  hop_diameter : int;
  mean_hop_distance : float;
  biconnected : bool;
}

let bfs_hops g src dist =
  Array.fill dist 0 (Array.length dist) (-1);
  dist.(src) <- 0;
  let q = Queue.create () in
  Queue.add src q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    Array.iter
      (fun w ->
        if dist.(w) < 0 then begin
          dist.(w) <- dist.(u) + 1;
          Queue.add w q
        end)
      (Graph.neighbors g u)
  done

let compute g =
  let n = Graph.n g in
  let degrees = Array.init n (Graph.degree g) in
  let components = ref 0 and largest = ref 0 in
  let seen = Array.make n false in
  for v = 0 to n - 1 do
    if not seen.(v) then begin
      incr components;
      let mask = Connectivity.component_of g v in
      let size = ref 0 in
      Array.iteri
        (fun i b ->
          if b then begin
            seen.(i) <- true;
            incr size
          end)
        mask;
      largest := max !largest !size
    end
  done;
  let dist = Array.make (max n 1) (-1) in
  let diameter = ref 0 and total = ref 0.0 and pairs = ref 0 in
  for v = 0 to n - 1 do
    bfs_hops g v dist;
    for w = 0 to n - 1 do
      if w <> v && dist.(w) > 0 then begin
        diameter := max !diameter dist.(w);
        total := !total +. float_of_int dist.(w);
        incr pairs
      end
    done
  done;
  {
    nodes = n;
    edges = Graph.m g;
    min_degree = Array.fold_left min max_int (if n = 0 then [| 0 |] else degrees);
    max_degree = Array.fold_left max 0 degrees;
    mean_degree = (if n = 0 then 0.0 else 2.0 *. float_of_int (Graph.m g) /. float_of_int n);
    components = !components;
    largest_component = !largest;
    hop_diameter = !diameter;
    mean_hop_distance =
      (if !pairs = 0 then nan else !total /. float_of_int !pairs);
    biconnected = Connectivity.is_biconnected g;
  }

let degree_histogram g =
  let tbl = Hashtbl.create 16 in
  for v = 0 to Graph.n g - 1 do
    let d = Graph.degree g v in
    Hashtbl.replace tbl d (1 + Option.value (Hashtbl.find_opt tbl d) ~default:0)
  done;
  Hashtbl.fold (fun d c acc -> (d, c) :: acc) tbl [] |> List.sort compare

let pp ppf m =
  Format.fprintf ppf
    "@[<v>nodes: %d@,edges: %d@,degree: min %d / mean %.2f / max %d@,\
     components: %d (largest %d)@,hop diameter: %d@,mean hop distance: %.2f@,\
     biconnected: %b@]"
    m.nodes m.edges m.min_degree m.mean_degree m.max_degree m.components
    m.largest_component m.hop_diameter m.mean_hop_distance m.biconnected
