type t = {
  out_adj : (int * float) array array; (* sorted by target *)
  m : int;
}

let create ~n ~links =
  if n < 0 then invalid_arg "Digraph.create: negative node count";
  let best = Hashtbl.create (2 * List.length links) in
  List.iter
    (fun (u, v, w) ->
      if u < 0 || u >= n || v < 0 || v >= n then
        invalid_arg "Digraph.create: endpoint out of range";
      if u = v then invalid_arg "Digraph.create: self-loop";
      if Float.is_nan w || w < 0.0 then
        invalid_arg "Digraph.create: weight must be non-negative";
      if w < infinity then
        match Hashtbl.find_opt best (u, v) with
        | Some w' when w' <= w -> ()
        | _ -> Hashtbl.replace best (u, v) w)
    links;
  let deg = Array.make n 0 in
  Hashtbl.iter (fun (u, _) _ -> deg.(u) <- deg.(u) + 1) best;
  let out_adj = Array.init n (fun u -> Array.make deg.(u) (0, 0.0)) in
  let fill = Array.make n 0 in
  Hashtbl.iter
    (fun (u, v) w ->
      out_adj.(u).(fill.(u)) <- (v, w);
      fill.(u) <- fill.(u) + 1)
    best;
  Array.iter (fun l -> Array.sort compare l) out_adj;
  { out_adj; m = Hashtbl.length best }

let n g = Array.length g.out_adj

let m g = g.m

let out_links g u = g.out_adj.(u)

let out_degree g u = Array.length g.out_adj.(u)

let weight g u v =
  let a = g.out_adj.(u) in
  let rec bsearch lo hi =
    if lo >= hi then infinity
    else
      let mid = (lo + hi) / 2 in
      let t, w = a.(mid) in
      if t = v then w else if t < v then bsearch (mid + 1) hi else bsearch lo mid
  in
  bsearch 0 (Array.length a)

let links g =
  let acc = ref [] in
  Array.iteri
    (fun u l -> Array.iter (fun (v, w) -> acc := (u, v, w) :: !acc) l)
    g.out_adj;
  List.sort compare !acc

let reverse g =
  create ~n:(n g) ~links:(List.map (fun (u, v, w) -> (v, u, w)) (links g))

let owner_of_link u _v = u

let silence_node g v =
  if v < 0 || v >= n g then invalid_arg "Digraph.silence_node: out of range";
  let out_adj = Array.copy g.out_adj in
  let removed = Array.length out_adj.(v) in
  out_adj.(v) <- [||];
  { out_adj; m = g.m - removed }

let remove_node g v =
  if v < 0 || v >= n g then invalid_arg "Digraph.remove_node: out of range";
  let m = ref g.m in
  let out_adj =
    Array.mapi
      (fun u l ->
        if u = v then begin
          m := !m - Array.length l;
          [||]
        end
        else begin
          let kept = Array.of_list (List.filter (fun (t, _) -> t <> v) (Array.to_list l)) in
          m := !m - (Array.length l - Array.length kept);
          kept
        end)
      g.out_adj
  in
  { out_adj; m = !m }

let remove_links_to g v =
  if v < 0 || v >= n g then invalid_arg "Digraph.remove_links_to: out of range";
  let m = ref g.m in
  let out_adj =
    Array.map
      (fun l ->
        if Array.exists (fun (t, _) -> t = v) l then begin
          let kept = Array.of_list (List.filter (fun (t, _) -> t <> v) (Array.to_list l)) in
          m := !m - (Array.length l - Array.length kept);
          kept
        end
        else l)
      g.out_adj
  in
  { out_adj; m = !m }

let pp ppf g =
  Format.fprintf ppf "@[<v>digraph n=%d m=%d@," (n g) g.m;
  Array.iteri
    (fun u l ->
      Array.iter (fun (v, w) -> Format.fprintf ppf "  %d -> %d (%g)@," u v w) l)
    g.out_adj;
  Format.fprintf ppf "@]"
