type tree = { source : int; dist : float array; parent : int array }

let never _ = false

let node_weighted ?(forbidden = never) g ~source =
  let n = Graph.n g in
  if source < 0 || source >= n then invalid_arg "Dijkstra: source out of range";
  if forbidden source then invalid_arg "Dijkstra: source is forbidden";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let heap = Indexed_heap.create n in
  dist.(source) <- 0.0;
  Indexed_heap.insert heap source 0.0;
  while not (Indexed_heap.is_empty heap) do
    let u, du = Indexed_heap.pop_min heap in
    if du <= dist.(u) then begin
      (* Leaving [u] charges its relay cost, except from the source. *)
      let leave = if u = source then 0.0 else Graph.cost g u in
      let nbrs = Graph.neighbors g u in
      Array.iter
        (fun w ->
          if not (forbidden w) then begin
            let cand = du +. leave in
            if cand < dist.(w) then begin
              dist.(w) <- cand;
              parent.(w) <- u;
              Indexed_heap.insert_or_decrease heap w cand
            end
          end)
        nbrs
    end
  done;
  parent.(source) <- -1;
  { source; dist; parent }

let link_weighted ?(forbidden = never) g source =
  let n = Digraph.n g in
  if source < 0 || source >= n then invalid_arg "Dijkstra: source out of range";
  if forbidden source then invalid_arg "Dijkstra: source is forbidden";
  let dist = Array.make n infinity in
  let parent = Array.make n (-1) in
  let heap = Indexed_heap.create n in
  dist.(source) <- 0.0;
  Indexed_heap.insert heap source 0.0;
  while not (Indexed_heap.is_empty heap) do
    let u, du = Indexed_heap.pop_min heap in
    if du <= dist.(u) then
      Array.iter
        (fun (w, weight) ->
          if not (forbidden w) then begin
            let cand = du +. weight in
            if cand < dist.(w) then begin
              dist.(w) <- cand;
              parent.(w) <- u;
              Indexed_heap.insert_or_decrease heap w cand
            end
          end)
        (Digraph.out_links g u)
  done;
  parent.(source) <- -1;
  { source; dist; parent }

let dist t v = t.dist.(v)

let reachable t v = t.dist.(v) < infinity

let path_in_tree t v =
  if not (reachable t v) then invalid_arg "Dijkstra.path_in_tree: unreachable";
  let rec up v acc = if v = t.source then v :: acc else up t.parent.(v) (v :: acc) in
  List.rev (up v [])

let path_to t v =
  if not (reachable t v) then None
  else begin
    let rec up v acc = if v = t.source then v :: acc else up t.parent.(v) (v :: acc) in
    Some (Array.of_list (up v []))
  end

let children t =
  let n = Array.length t.parent in
  let counts = Array.make n 0 in
  Array.iter (fun p -> if p >= 0 then counts.(p) <- counts.(p) + 1) t.parent;
  let out = Array.init n (fun v -> Array.make counts.(v) 0) in
  let fill = Array.make n 0 in
  Array.iteri
    (fun v p ->
      if p >= 0 then begin
        out.(p).(fill.(p)) <- v;
        fill.(p) <- fill.(p) + 1
      end)
    t.parent;
  out
