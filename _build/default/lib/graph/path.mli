(** Paths and their relay costs.

    A path is the node sequence [source; ...; destination].  Following
    Sec. II-C, its cost is the sum of the costs of the {e relay} nodes —
    everything strictly between source and destination.  A single-node or
    two-node path therefore has cost 0. *)

type t = int array
(** Node sequence from source to destination, length >= 1. *)

val source : t -> int
val destination : t -> int

val relays : t -> int array
(** The intermediate nodes, in order. *)

val hops : t -> int
(** Number of edges, i.e. [length - 1]. *)

val relay_cost : Graph.t -> t -> float
(** Sum of relay-node costs (node-weighted model). *)

val link_cost : Digraph.t -> t -> float
(** Sum of link weights along the path (link-weighted model);
    [infinity] if some link is absent. *)

val is_valid : Graph.t -> t -> bool
(** Consecutive nodes adjacent, no repeated node, non-empty. *)

val is_valid_directed : Digraph.t -> t -> bool
(** Same, for a directed path. *)

val mem : t -> int -> bool
(** [mem p v] tests whether [v] occurs on the path (endpoints included). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints as [v0 -> v1 -> ... -> vk]. *)
