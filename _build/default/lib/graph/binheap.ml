type 'a t = {
  mutable keys : float array;
  mutable vals : 'a array;
  mutable size : int;
}

let create () = { keys = [||]; vals = [||]; size = 0 }

let size h = h.size

let is_empty h = h.size = 0

let grow h v =
  let cap = Array.length h.keys in
  if h.size = cap then begin
    let new_cap = max 8 (2 * cap) in
    let keys = Array.make new_cap 0.0 in
    let vals = Array.make new_cap v in
    Array.blit h.keys 0 keys 0 h.size;
    Array.blit h.vals 0 vals 0 h.size;
    h.keys <- keys;
    h.vals <- vals
  end

let swap h i j =
  let k = h.keys.(i) and v = h.vals.(i) in
  h.keys.(i) <- h.keys.(j);
  h.vals.(i) <- h.vals.(j);
  h.keys.(j) <- k;
  h.vals.(j) <- v

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if h.keys.(i) < h.keys.(parent) then begin
      swap h i parent;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let m = if l < h.size && h.keys.(l) < h.keys.(i) then l else i in
  let m = if r < h.size && h.keys.(r) < h.keys.(m) then r else m in
  if m <> i then begin
    swap h i m;
    sift_down h m
  end

let push h key v =
  grow h v;
  let i = h.size in
  h.keys.(i) <- key;
  h.vals.(i) <- v;
  h.size <- i + 1;
  sift_up h i

let peek_min h = if h.size = 0 then None else Some (h.keys.(0), h.vals.(0))

let pop_min h =
  if h.size = 0 then None
  else begin
    let k = h.keys.(0) and v = h.vals.(0) in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.keys.(0) <- h.keys.(h.size);
      h.vals.(0) <- h.vals.(h.size);
      sift_down h 0
    end;
    Some (k, v)
  end
