(** Connectivity and biconnectivity tests.

    The paper assumes the communication graph is node-biconnected
    (Sec. II-B): removing any single node leaves the graph connected.
    This prevents any relay from holding a monopoly — without it, a cut
    node's VCG payment would be unbounded.  The neighbour-collusion scheme
    of Sec. III-E needs the stronger property that removing a whole closed
    neighbourhood [N(v_k)] keeps source and destination connected. *)

val component_of : Graph.t -> int -> bool array
(** [component_of g v] marks the nodes reachable from [v] (isolated nodes
    produced by [Graph.remove_node] are unreachable unless [v] itself). *)

val is_connected : Graph.t -> bool
(** True iff all nodes are mutually reachable ([true] for n <= 1). *)

val connected_between : Graph.t -> int -> int -> bool

val articulation_points : Graph.t -> int list
(** Tarjan's articulation points (cut vertices), sorted.  A node is an
    articulation point iff its removal increases the number of connected
    components. *)

val is_biconnected : Graph.t -> bool
(** True iff [g] is connected, has at least 3 nodes, and has no
    articulation point — the paper's standing assumption. *)

val connected_without : Graph.t -> removed:int list -> int -> int -> bool
(** [connected_without g ~removed s t] tests whether [s] and [t] remain
    connected after isolating every node in [removed].  [s] or [t]
    belonging to [removed] yields [false] (unless [s = t]). *)

val k_hop_neighbourhood : Graph.t -> int -> int -> int list
(** [k_hop_neighbourhood g v k] is every node within [k] hops of [v],
    including [v], sorted — the natural collusion set [Q(v)] for the
    generalized scheme of Sec. III-E when nodes can collude across [k]
    hops.
    @raise Invalid_argument if [k < 0] or [v] out of range. *)

val neighbourhood_resilient : Graph.t -> src:int -> dst:int -> bool
(** Pre-condition of Theorem 8: for every node [v_k] other than [src] and
    [dst], the graph minus the closed neighbourhood [N(v_k)] (restricted
    to nodes other than [src]/[dst]) still connects [src] and [dst]. *)
