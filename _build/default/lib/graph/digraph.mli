(** Directed graphs with per-link weights.

    This is the network model of Sec. III-F: when nodes can adjust their
    transmission power, node [i]'s private type is the {e vector} of power
    costs [c_{i,j}] it needs to reach each neighbour [j], and the routing
    graph is directed (node [i] may reach [j] while [j] cannot reach [i]
    with its own range).  The weight of link [i -> j] is [c_{i,j}]; the
    cost of a directed path is the sum of its link weights. *)

type t

val create : n:int -> links:(int * int * float) list -> t
(** [create ~n ~links] builds a digraph on [n] nodes from
    [(src, dst, weight)] triples.  Parallel links keep the cheapest weight.
    @raise Invalid_argument on out-of-range endpoints, self-loops, or
    negative/NaN weights ([infinity] is allowed and means "no link"; such
    links are dropped). *)

val n : t -> int

val m : t -> int
(** Number of directed links. *)

val out_links : t -> int -> (int * float) array
(** [out_links g u] is the (shared, do not mutate) array of
    [(target, weight)] links leaving [u], sorted by target. *)

val out_degree : t -> int -> int

val weight : t -> int -> int -> float
(** [weight g u v] is the weight of link [u -> v], or [infinity] when
    absent. *)

val links : t -> (int * int * float) list
(** All links, sorted. *)

val reverse : t -> t
(** [reverse g] flips every link — the standard trick to compute
    shortest paths from every node {e to} a fixed root (the access
    point). *)

val owner_of_link : int -> int -> int
(** [owner_of_link u v] is the agent that pays for link [u -> v] — the
    transmitter [u].  Trivial, but kept as the single point of truth for
    the "node is the agent" convention of Sec. III-F. *)

val silence_node : t -> int -> t
(** [silence_node g v] removes all links {e leaving} [v] — exactly the
    paper's [d_{k,j} = infinity for each j] operation used to compute the
    [v_k]-avoiding least cost path.  Links entering [v] remain, but they
    are dead ends for reaching anything beyond [v]. *)

val remove_node : t -> int -> t
(** [remove_node g v] removes all links incident to [v] in either
    direction. *)

val remove_links_to : t -> int -> t
(** [remove_links_to g v] removes all links {e entering} [v].  On a
    reversed graph this is exactly {!silence_node} of the original — the
    operation batch payment computation needs. *)

val pp : Format.formatter -> t -> unit
