type t = int array

let source p =
  if Array.length p = 0 then invalid_arg "Path.source: empty path";
  p.(0)

let destination p =
  if Array.length p = 0 then invalid_arg "Path.destination: empty path";
  p.(Array.length p - 1)

let relays p =
  if Array.length p <= 2 then [||] else Array.sub p 1 (Array.length p - 2)

let hops p = max 0 (Array.length p - 1)

let relay_cost g p =
  let acc = ref 0.0 in
  for i = 1 to Array.length p - 2 do
    acc := !acc +. Graph.cost g p.(i)
  done;
  !acc

let link_cost g p =
  let acc = ref 0.0 in
  for i = 0 to Array.length p - 2 do
    acc := !acc +. Digraph.weight g p.(i) p.(i + 1)
  done;
  !acc

let no_repeats p =
  let seen = Hashtbl.create (Array.length p) in
  Array.for_all
    (fun v ->
      if Hashtbl.mem seen v then false
      else begin
        Hashtbl.add seen v ();
        true
      end)
    p

let is_valid g p =
  Array.length p > 0
  && Array.for_all (fun v -> v >= 0 && v < Graph.n g) p
  && no_repeats p
  &&
  let ok = ref true in
  for i = 0 to Array.length p - 2 do
    if not (Graph.mem_edge g p.(i) p.(i + 1)) then ok := false
  done;
  !ok

let is_valid_directed g p =
  Array.length p > 0
  && Array.for_all (fun v -> v >= 0 && v < Digraph.n g) p
  && no_repeats p
  &&
  let ok = ref true in
  for i = 0 to Array.length p - 2 do
    if Digraph.weight g p.(i) p.(i + 1) = infinity then ok := false
  done;
  !ok

let mem p v = Array.exists (fun x -> x = v) p

let equal a b = a = b

let pp ppf p =
  let first = ref true in
  Array.iter
    (fun v ->
      if !first then first := false else Format.fprintf ppf " -> ";
      Format.fprintf ppf "%d" v)
    p
