type decl =
  | Node of int * float
  | Edge of int * int
  | Link of int * int * float

let parse_decls text =
  let decls = ref [] in
  let lines = String.split_on_char '\n' text in
  List.iteri
    (fun lineno line ->
      let fail msg = failwith (Printf.sprintf "line %d: %s" (lineno + 1) msg) in
      let line =
        match String.index_opt line '#' with
        | Some i -> String.sub line 0 i
        | None -> line
      in
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun w -> w <> "")
      in
      let int_of w = try int_of_string w with Failure _ -> fail ("bad integer " ^ w) in
      let float_of w =
        try float_of_string w with Failure _ -> fail ("bad number " ^ w)
      in
      match words with
      | [] -> ()
      | [ "node"; id; cost ] -> decls := Node (int_of id, float_of cost) :: !decls
      | [ "edge"; u; v ] -> decls := Edge (int_of u, int_of v) :: !decls
      | [ "link"; u; v; w ] ->
        decls := Link (int_of u, int_of v, float_of w) :: !decls
      | kw :: _ -> fail ("unknown declaration " ^ kw))
    lines;
  List.rev !decls

let max_id decls =
  List.fold_left
    (fun acc d ->
      match d with
      | Node (i, _) -> max acc i
      | Edge (u, v) | Link (u, v, _) -> max acc (max u v))
    (-1) decls

let parse text =
  let decls = parse_decls text in
  let n = max_id decls + 1 in
  let costs = Array.make n 0.0 in
  let edges = ref [] in
  List.iter
    (fun d ->
      match d with
      | Node (i, c) ->
        if i < 0 || i >= n then failwith "node id out of range";
        costs.(i) <- c
      | Edge (u, v) -> edges := (u, v) :: !edges
      | Link _ -> failwith "link lines belong to the digraph format; use edge")
    decls;
  Graph.create ~costs ~edges:!edges

let parse_digraph text =
  let decls = parse_decls text in
  let n = max_id decls + 1 in
  let links = ref [] in
  List.iter
    (fun d ->
      match d with
      | Node _ -> ()
      | Edge (u, v) -> links := (u, v, 0.0) :: (v, u, 0.0) :: !links
      | Link (u, v, w) -> links := (u, v, w) :: !links)
    decls;
  Digraph.create ~n ~links:!links

let read_file path =
  let ic = open_in path in
  let len = in_channel_length ic in
  let s = really_input_string ic len in
  close_in ic;
  s

let parse_file path = parse (read_file path)

let parse_digraph_file path = parse_digraph (read_file path)

let to_string g =
  let buf = Buffer.create 256 in
  for v = 0 to Graph.n g - 1 do
    Buffer.add_string buf (Printf.sprintf "node %d %g\n" v (Graph.cost g v))
  done;
  Graph.iter_edges
    (fun u v -> Buffer.add_string buf (Printf.sprintf "edge %d %d\n" u v))
    g;
  Buffer.contents buf
