let component_of g v =
  let n = Graph.n g in
  if v < 0 || v >= n then invalid_arg "Connectivity.component_of";
  let seen = Array.make n false in
  let stack = ref [ v ] in
  seen.(v) <- true;
  while !stack <> [] do
    match !stack with
    | [] -> ()
    | u :: rest ->
      stack := rest;
      Array.iter
        (fun w ->
          if not seen.(w) then begin
            seen.(w) <- true;
            stack := w :: !stack
          end)
        (Graph.neighbors g u)
  done;
  seen

let is_connected g =
  let n = Graph.n g in
  n <= 1 || Array.for_all (fun b -> b) (component_of g 0)

let connected_between g s t = s = t || (component_of g s).(t)

(* Iterative Tarjan lowpoint computation.  A non-root vertex [u] is an
   articulation point iff it has a DFS child [w] with [low(w) >= disc(u)];
   the root is one iff it has at least two DFS children. *)
let articulation_points g =
  let n = Graph.n g in
  let disc = Array.make n (-1) in
  let low = Array.make n 0 in
  let is_ap = Array.make n false in
  let timer = ref 0 in
  for root = 0 to n - 1 do
    if disc.(root) < 0 then begin
      let root_children = ref 0 in
      (* Frame: (vertex, parent, next neighbour index). *)
      let stack = Stack.create () in
      disc.(root) <- !timer;
      low.(root) <- !timer;
      incr timer;
      Stack.push (root, -1, ref 0) stack;
      while not (Stack.is_empty stack) do
        let u, parent, next = Stack.top stack in
        let nbrs = Graph.neighbors g u in
        if !next < Array.length nbrs then begin
          let w = nbrs.(!next) in
          incr next;
          if disc.(w) < 0 then begin
            if u = root then incr root_children;
            disc.(w) <- !timer;
            low.(w) <- !timer;
            incr timer;
            Stack.push (w, u, ref 0) stack
          end
          else if w <> parent then low.(u) <- min low.(u) disc.(w)
        end
        else begin
          ignore (Stack.pop stack);
          if parent >= 0 then begin
            low.(parent) <- min low.(parent) low.(u);
            if parent <> root && low.(u) >= disc.(parent) then
              is_ap.(parent) <- true
          end
        end
      done;
      if !root_children >= 2 then is_ap.(root) <- true
    end
  done;
  let acc = ref [] in
  for v = n - 1 downto 0 do
    if is_ap.(v) then acc := v :: !acc
  done;
  !acc

let is_biconnected g =
  Graph.n g >= 3 && is_connected g && articulation_points g = []

let connected_without g ~removed s t =
  if s = t then true
  else if List.mem s removed || List.mem t removed then false
  else connected_between (Graph.remove_nodes g removed) s t

let k_hop_neighbourhood g v k =
  let n = Graph.n g in
  if v < 0 || v >= n then invalid_arg "Connectivity.k_hop_neighbourhood";
  if k < 0 then invalid_arg "Connectivity.k_hop_neighbourhood: negative radius";
  let depth = Array.make n (-1) in
  depth.(v) <- 0;
  let q = Queue.create () in
  Queue.add v q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    if depth.(u) < k then
      Array.iter
        (fun w ->
          if depth.(w) < 0 then begin
            depth.(w) <- depth.(u) + 1;
            Queue.add w q
          end)
        (Graph.neighbors g u)
  done;
  let acc = ref [] in
  for u = n - 1 downto 0 do
    if depth.(u) >= 0 then acc := u :: !acc
  done;
  !acc

let neighbourhood_resilient g ~src ~dst =
  let n = Graph.n g in
  let ok = ref true in
  for k = 0 to n - 1 do
    if k <> src && k <> dst then begin
      let closed = k :: Array.to_list (Graph.neighbors g k) in
      let removed = List.filter (fun v -> v <> src && v <> dst) closed in
      if not (connected_without g ~removed src dst) then ok := false
    end
  done;
  !ok
