(** Heterogeneous-range instances — the paper's second simulation set-up
    ("random graph", Fig. 3 (e)–(f)).

    Each node [v_i] draws its own transmission range uniformly from
    [\[100 m, 500 m\]]; a {e directed} link [i -> j] exists iff
    [||v_i v_j|| <= range_i].  The cost of the link is
    [c1_i + c2_i * ||v_i v_j||^kappa] with per-node constants
    [c1 ∈ [300, 500]] and [c2 ∈ [10, 50]] — "the actual power cost in one
    second of a node to send data at 2 Mbps" per the paper. *)

type params = {
  range_lo : float;
  range_hi : float;
  c1_lo : float;
  c1_hi : float;
  c2_lo : float;
  c2_hi : float;
  kappa : float;
}

val paper_params : kappa:float -> params
(** Ranges [100..500], [c1 ∈ [300, 500]], [c2 ∈ [10, 50]]. *)

type t = {
  points : Wnet_geom.Point.t array;
  ranges : float array;
  models : Wnet_geom.Power.t array;  (** per-node cost model *)
  graph : Wnet_graph.Digraph.t;
}

val generate :
  Wnet_prng.Rng.t -> region:Wnet_geom.Region.t -> n:int -> params -> t
(** @raise Invalid_argument on negative [n] or inverted parameter
    ranges. *)

val paper_instance : Wnet_prng.Rng.t -> n:int -> kappa:float -> t
(** 2000 m square with {!paper_params}. *)

val strongly_connected_to : t -> root:int -> bool
(** Whether every node can reach [root] {e and} [root] can reach every
    node — the precondition for the all-to-root experiments. *)

val generate_usable :
  Wnet_prng.Rng.t ->
  region:Wnet_geom.Region.t -> n:int -> params -> root:int -> max_tries:int ->
  t option
(** Re-draws until {!strongly_connected_to} [root] holds. *)
