(** Deterministic structured topologies for tests and ablations. *)

val line : costs:float array -> Wnet_graph.Graph.t
(** Path graph [0 - 1 - ... - (n-1)].  Not biconnected: every interior
    node is a monopoly — the degenerate case the biconnectivity
    assumption exists to exclude. *)

val ring : costs:float array -> Wnet_graph.Graph.t
(** Cycle [0 - 1 - ... - (n-1) - 0]: the minimal biconnected topology;
    every replacement path is "the other way around".  Needs n >= 3. *)

val complete : costs:float array -> Wnet_graph.Graph.t
(** Clique: every unicast is one hop, all payments are zero. *)

val grid : rows:int -> cols:int -> cost:(int -> int -> float) -> Wnet_graph.Graph.t
(** [rows × cols] lattice; node id of cell [(r, c)] is [r * cols + c];
    [cost r c] supplies the relay cost. *)

val theta : spine_costs:float array -> arm_costs:float array array -> Wnet_graph.Graph.t
(** A "theta graph" generalization: two terminals [0] (source side) and
    [1] joined by parallel disjoint arms; arm [i] has the relay costs
    [arm_costs.(i)] in order.  [spine_costs.(0)], [spine_costs.(1)] are
    the terminals' own costs.  The canonical shape for hand-computing
    VCG pivots (each arm is a candidate path). *)
