open Wnet_prng

let edges rng ~n ~p =
  if n < 0 then invalid_arg "Gnp.edges: negative n";
  if p < 0.0 || p > 1.0 then invalid_arg "Gnp.edges: p out of range";
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Rng.bernoulli rng p then acc := (u, v) :: !acc
    done
  done;
  List.rev !acc

let costs rng n lo hi = Array.init n (fun _ -> Rng.float_range rng lo hi)

let graph rng ~n ~p ~cost_lo ~cost_hi =
  Wnet_graph.Graph.create ~costs:(costs rng n cost_lo cost_hi)
    ~edges:(edges rng ~n ~p)

let random_tree rng n =
  (* Each node > 0 attaches to a uniform earlier node: a uniform random
     recursive tree, connected by construction. *)
  List.init (max 0 (n - 1)) (fun i ->
      let v = i + 1 in
      (v, Rng.int rng v))

let connected_graph rng ~n ~p ~cost_lo ~cost_hi =
  Wnet_graph.Graph.create ~costs:(costs rng n cost_lo cost_hi)
    ~edges:(random_tree rng n @ edges rng ~n ~p)

let biconnected_graph rng ~n ~p ~cost_lo ~cost_hi ~max_tries =
  if n < 3 then invalid_arg "Gnp.biconnected_graph: needs n >= 3";
  let cycle = List.init n (fun v -> (v, (v + 1) mod n)) in
  let rec go tries =
    if tries <= 0 then None
    else begin
      let g =
        Wnet_graph.Graph.create ~costs:(costs rng n cost_lo cost_hi)
          ~edges:(cycle @ edges rng ~n ~p)
      in
      if Wnet_graph.Connectivity.is_biconnected g then Some g else go (tries - 1)
    end
  in
  go max_tries
