open Wnet_geom

type params = {
  range_lo : float;
  range_hi : float;
  c1_lo : float;
  c1_hi : float;
  c2_lo : float;
  c2_hi : float;
  kappa : float;
}

let paper_params ~kappa =
  {
    range_lo = 100.0;
    range_hi = 500.0;
    c1_lo = 300.0;
    c1_hi = 500.0;
    c2_lo = 10.0;
    c2_hi = 50.0;
    kappa;
  }

type t = {
  points : Point.t array;
  ranges : float array;
  models : Power.t array;
  graph : Wnet_graph.Digraph.t;
}

let generate rng ~region ~n p =
  if n < 0 then invalid_arg "Random_range.generate: negative n";
  if p.range_lo > p.range_hi || p.c1_lo > p.c1_hi || p.c2_lo > p.c2_hi then
    invalid_arg "Random_range.generate: inverted parameter range";
  let points = Region.sample_points rng region n in
  let ranges =
    Array.init n (fun _ -> Wnet_prng.Rng.float_range rng p.range_lo p.range_hi)
  in
  let models =
    Array.init n (fun _ ->
        Power.make
          ~alpha:(Wnet_prng.Rng.float_range rng p.c1_lo p.c1_hi)
          ~beta:(Wnet_prng.Rng.float_range rng p.c2_lo p.c2_hi)
          ~kappa:p.kappa)
  in
  let links = ref [] in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if i <> j && Point.within ranges.(i) points.(i) points.(j) then begin
        let w = Power.link_cost models.(i) points.(i) points.(j) in
        links := (i, j, w) :: !links
      end
    done
  done;
  { points; ranges; models; graph = Wnet_graph.Digraph.create ~n ~links:!links }

let paper_instance rng ~n ~kappa =
  generate rng ~region:Region.paper_region ~n (paper_params ~kappa)

let strongly_connected_to t ~root =
  let open Wnet_graph in
  let n = Digraph.n t.graph in
  let from_root = Dijkstra.link_weighted t.graph root in
  let to_root = Dijkstra.link_weighted (Digraph.reverse t.graph) root in
  let ok = ref true in
  for v = 0 to n - 1 do
    if not (Dijkstra.reachable from_root v && Dijkstra.reachable to_root v) then
      ok := false
  done;
  !ok

let generate_usable rng ~region ~n p ~root ~max_tries =
  let rec go tries =
    if tries <= 0 then None
    else begin
      let t = generate rng ~region ~n p in
      if strongly_connected_to t ~root then Some t else go (tries - 1)
    end
  in
  go max_tries
