open Wnet_geom

type t = {
  points : Point.t array;
  range : float;
  edges : (int * int) list;
}

let adjacency points range =
  let n = Array.length points in
  let acc = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      if Point.within range points.(u) points.(v) then acc := (u, v) :: !acc
    done
  done;
  List.rev !acc

let generate rng ~region ~n ~range =
  if n < 0 then invalid_arg "Udg.generate: negative n";
  if range < 0.0 then invalid_arg "Udg.generate: negative range";
  let points = Region.sample_points rng region n in
  { points; range; edges = adjacency points range }

let paper_instance rng ~n =
  generate rng ~region:Region.paper_region ~n ~range:300.0

let link_graph t ~model =
  let links =
    List.concat_map
      (fun (u, v) ->
        let w = Power.link_cost model t.points.(u) t.points.(v) in
        [ (u, v, w); (v, u, w) ])
      t.edges
  in
  Wnet_graph.Digraph.create ~n:(Array.length t.points) ~links

let node_graph t ~costs =
  if Array.length costs <> Array.length t.points then
    invalid_arg "Udg.node_graph: cost vector length mismatch";
  Wnet_graph.Graph.create ~costs ~edges:t.edges

let uniform_node_costs rng ~n ~lo ~hi =
  Array.init n (fun _ -> Wnet_prng.Rng.float_range rng lo hi)

let is_connected t =
  let costs = Array.make (Array.length t.points) 0.0 in
  Wnet_graph.Connectivity.is_connected
    (Wnet_graph.Graph.create ~costs ~edges:t.edges)

let generate_connected rng ~region ~n ~range ~max_tries =
  let rec go tries =
    if tries <= 0 then None
    else begin
      let t = generate rng ~region ~n ~range in
      if is_connected t then Some t else go (tries - 1)
    end
  in
  go max_tries
