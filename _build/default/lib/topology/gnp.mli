(** Erdős–Rényi random graphs with random node costs.

    Not part of the paper's evaluation; the property-based tests use
    these to exercise the algorithms far from geometric structure. *)

val edges : Wnet_prng.Rng.t -> n:int -> p:float -> (int * int) list
(** Each of the [n(n-1)/2] pairs independently with probability [p].
    @raise Invalid_argument if [p] is outside [\[0, 1\]] or [n < 0]. *)

val graph :
  Wnet_prng.Rng.t ->
  n:int -> p:float -> cost_lo:float -> cost_hi:float ->
  Wnet_graph.Graph.t
(** [edges] plus i.i.d. uniform costs. *)

val connected_graph :
  Wnet_prng.Rng.t ->
  n:int -> p:float -> cost_lo:float -> cost_hi:float ->
  Wnet_graph.Graph.t
(** Like {!graph}, but a uniform random spanning tree is added first so
    the result is always connected (useful for tests that need
    reachability without retry loops). *)

val biconnected_graph :
  Wnet_prng.Rng.t ->
  n:int -> p:float -> cost_lo:float -> cost_hi:float -> max_tries:int ->
  Wnet_graph.Graph.t option
(** Re-draws {!connected_graph} (adding a Hamiltonian-cycle backbone
    instead of a tree) until {!Wnet_graph.Connectivity.is_biconnected};
    [None] after [max_tries].  Needs [n >= 3]. *)
