lib/topology/fixtures.mli: Wnet_graph
