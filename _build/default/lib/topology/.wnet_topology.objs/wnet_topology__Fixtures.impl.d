lib/topology/fixtures.ml: Array List Wnet_graph
