lib/topology/random_range.mli: Wnet_geom Wnet_graph Wnet_prng
