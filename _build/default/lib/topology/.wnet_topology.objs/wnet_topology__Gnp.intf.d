lib/topology/gnp.mli: Wnet_graph Wnet_prng
