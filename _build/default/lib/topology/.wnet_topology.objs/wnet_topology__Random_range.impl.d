lib/topology/random_range.ml: Array Digraph Dijkstra Point Power Region Wnet_geom Wnet_graph Wnet_prng
