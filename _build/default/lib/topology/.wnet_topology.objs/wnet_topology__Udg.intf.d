lib/topology/udg.mli: Wnet_geom Wnet_graph Wnet_prng
