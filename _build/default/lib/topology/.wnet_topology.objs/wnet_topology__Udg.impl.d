lib/topology/udg.ml: Array List Point Power Region Wnet_geom Wnet_graph Wnet_prng
