lib/topology/gnp.ml: Array List Rng Wnet_graph Wnet_prng
