let line ~costs =
  let n = Array.length costs in
  Wnet_graph.Graph.create ~costs
    ~edges:(List.init (max 0 (n - 1)) (fun i -> (i, i + 1)))

let ring ~costs =
  let n = Array.length costs in
  if n < 3 then invalid_arg "Fixtures.ring: needs n >= 3";
  Wnet_graph.Graph.create ~costs
    ~edges:(List.init n (fun i -> (i, (i + 1) mod n)))

let complete ~costs =
  let n = Array.length costs in
  let edges = ref [] in
  for u = 0 to n - 1 do
    for v = u + 1 to n - 1 do
      edges := (u, v) :: !edges
    done
  done;
  Wnet_graph.Graph.create ~costs ~edges:!edges

let grid ~rows ~cols ~cost =
  if rows <= 0 || cols <= 0 then invalid_arg "Fixtures.grid: empty";
  let id r c = (r * cols) + c in
  let costs =
    Array.init (rows * cols) (fun v -> cost (v / cols) (v mod cols))
  in
  let edges = ref [] in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then edges := (id r c, id r (c + 1)) :: !edges;
      if r + 1 < rows then edges := (id r c, id (r + 1) c) :: !edges
    done
  done;
  Wnet_graph.Graph.create ~costs ~edges:!edges

let theta ~spine_costs ~arm_costs =
  if Array.length spine_costs <> 2 then
    invalid_arg "Fixtures.theta: spine_costs must have the two terminals";
  let relay_count =
    Array.fold_left (fun acc arm -> acc + Array.length arm) 0 arm_costs
  in
  let costs = Array.make (2 + relay_count) 0.0 in
  costs.(0) <- spine_costs.(0);
  costs.(1) <- spine_costs.(1);
  let edges = ref [] in
  let next = ref 2 in
  Array.iter
    (fun arm ->
      if Array.length arm = 0 then edges := (0, 1) :: !edges
      else begin
        let first = !next in
        Array.iteri
          (fun i c ->
            let v = first + i in
            costs.(v) <- c;
            if i = 0 then edges := (0, v) :: !edges
            else edges := (v - 1, v) :: !edges)
          arm;
        edges := (first + Array.length arm - 1, 1) :: !edges;
        next := first + Array.length arm
      end)
    arm_costs;
  Wnet_graph.Graph.create ~costs ~edges:!edges
