(** Unit-disk-graph instances — the paper's first simulation set-up.

    [n] nodes are placed uniformly at random in a region (the paper uses
    2000 m × 2000 m); two nodes are linked iff their distance is at most
    the common transmission range (the paper uses 300 m).  The cost for
    [v_i] to forward a packet to [v_j] is [||v_i v_j||^kappa] with
    [kappa ∈ {2, 2.5}] — a link cost, so the Fig. 3 (a)–(d) experiments
    run on the directed link-weighted mechanism of Sec. III-F. *)

type t = {
  points : Wnet_geom.Point.t array;
  range : float;
  edges : (int * int) list;  (** undirected adjacency pairs, [u < v] *)
}

val generate :
  Wnet_prng.Rng.t -> region:Wnet_geom.Region.t -> n:int -> range:float -> t
(** Placement plus adjacency.  O(n^2) distance checks — fine at the
    paper's scales.
    @raise Invalid_argument if [n < 0] or [range < 0]. *)

val paper_instance : Wnet_prng.Rng.t -> n:int -> t
(** The paper's parameters: 2000 m square, range 300 m. *)

val link_graph : t -> model:Wnet_geom.Power.t -> Wnet_graph.Digraph.t
(** Directed graph with [w(i -> j) = model(||v_i v_j||)] on every
    adjacency, both directions (same length, hence symmetric weights —
    but the mechanism treats them as separate declarations by separate
    owners). *)

val node_graph : t -> costs:float array -> Wnet_graph.Graph.t
(** Node-cost view of the same topology, for the node-weighted mechanism
    (Sec. III-A) and the ablation experiments.
    @raise Invalid_argument if [costs] has the wrong length. *)

val uniform_node_costs :
  Wnet_prng.Rng.t -> n:int -> lo:float -> hi:float -> float array
(** I.i.d. uniform relay costs in [\[lo, hi)] — "the cost of each node is
    chosen independently and uniformly from a range" (Sec. III-G). *)

val is_connected : t -> bool
(** Connectivity of the undirected adjacency (cheap pre-check before
    running a whole experiment on a disconnected deployment). *)

val generate_connected :
  Wnet_prng.Rng.t ->
  region:Wnet_geom.Region.t -> n:int -> range:float -> max_tries:int ->
  t option
(** Re-draws until {!is_connected} holds; [None] after [max_tries]. *)
