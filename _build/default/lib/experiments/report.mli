(** One-command reproduction report.

    Runs every experiment in the repository at a chosen scale and emits a
    single self-contained markdown document (tables in code fences, one
    section per paper artifact, seeds recorded).  This is the generator
    behind the numbers quoted in EXPERIMENTS.md: re-run it at
    [~instances:100] to refresh the full record, or at the default scale
    for a quick check. *)

val generate : ?instances:int -> ?seed:int -> unit -> string
(** Defaults: [instances = 10] (the paper uses 100), [seed = 2004].
    Runtime grows roughly linearly in [instances]; the default takes on
    the order of a minute. *)

val save : path:string -> string -> unit
(** Write the report to a file. *)
