type bucket = {
  hop : int;
  count : int;
  mean_gap : float;
  max_gap : float;
}

let study ?(n = 150) ?(instances = 5) ~seed () =
  let rng = Wnet_prng.Rng.create seed in
  let tbl = Hashtbl.create 32 in
  for _ = 1 to instances do
    let child = Wnet_prng.Rng.split rng in
    let t = Wnet_topology.Udg.paper_instance child ~n in
    let costs = Wnet_topology.Udg.uniform_node_costs child ~n ~lo:1.0 ~hi:10.0 in
    let g = Wnet_topology.Udg.node_graph t ~costs in
    for src = 1 to n - 1 do
      match Wnet_graph.Ksp.k_shortest_paths g ~src ~dst:0 ~k:2 with
      | [ best; second ] ->
        let c1 = Wnet_graph.Path.relay_cost g best in
        if c1 > 0.0 then begin
          let c2 = Wnet_graph.Path.relay_cost g second in
          let gap = (c2 -. c1) /. c1 in
          let hop = Wnet_graph.Path.hops best in
          let sum, mx, cnt =
            Option.value (Hashtbl.find_opt tbl hop) ~default:(0.0, neg_infinity, 0)
          in
          Hashtbl.replace tbl hop (sum +. gap, Float.max mx gap, cnt + 1)
        end
      | _ -> ()
    done
  done;
  Hashtbl.fold
    (fun hop (sum, mx, cnt) acc ->
      { hop; count = cnt; mean_gap = sum /. float_of_int cnt; max_gap = mx } :: acc)
    tbl []
  |> List.sort (fun a b -> compare a.hop b.hop)

let render buckets =
  let table =
    Wnet_stats.Table.make
      ~headers:[ "hops"; "sources"; "mean (c2-c1)/c1"; "max (c2-c1)/c1" ]
  in
  List.iter
    (fun b ->
      Wnet_stats.Table.add_row table
        [
          string_of_int b.hop;
          string_of_int b.count;
          Printf.sprintf "%.4f" b.mean_gap;
          Printf.sprintf "%.4f" b.max_gap;
        ])
    buckets;
  Wnet_stats.Table.render table
