(** Ablation: the price of collusion resistance.

    The neighbourhood scheme [p̃] of Theorem 8 prices node [k] by
    removing all of [N(v_k)] instead of [v_k] alone, so its pivot is at
    least as expensive and every relay earns at least its plain-VCG
    payment.  The paper notes the scheme "is optimum in terms of the
    individual payment" among neighbourhood-independent schemes but does
    not quantify the premium; this experiment does, on the Fig. 3 UDG
    workload:

    - the total-payment ratio [Σ p̃ / Σ p] per source (how much more a
      source pays for collusion resistance);
    - the fraction of sources for which some [p̃] payment is infinite
      (removing a closed neighbourhood disconnects them — the resilience
      precondition failing);
    - payments to off-path nodes (zero under VCG, possibly positive
      under [p̃]). *)

type topology =
  | Dense_udg  (** 1000 m square, range 300 m *)
  | Gnp of float  (** Erdős–Rényi with the given edge probability *)
(** On geometric (UDG) graphs a closed neighbourhood is a disk whose
    removal usually blocks or nearly blocks the source — Theorem 8's
    resilience precondition mostly fails and the finite premiums are
    huge.  On dense non-geometric graphs the scheme behaves, at a
    measurable premium.  Both are reported; the contrast is itself a
    finding (see EXPERIMENTS.md). *)

type row = {
  n : int;
  sources : int;  (** sources with finite payments under both schemes *)
  monopolized : int;  (** sources hitting an infinite neighbourhood pivot *)
  mean_ratio : float;  (** mean over sources of [Σ p̃ / Σ p] *)
  max_ratio : float;
  off_path_paid : float;
      (** mean (over sources) number of off-path nodes with positive
          [p̃] payment *)
}

val sweep :
  ?topology:topology -> ?ns:int list -> ?instances:int -> seed:int -> unit ->
  row list
(** Uniform node costs in [\[1, 10)]; every node unicasts to the access
    point.  Defaults: [topology = Gnp 0.3], [ns = [50; 100; 150]],
    5 instances (the neighbourhood scheme costs one Dijkstra per
    node-with-a-path-neighbour per source, so this is the expensive
    experiment). *)

val render : row list -> string
