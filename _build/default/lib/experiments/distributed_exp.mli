(** Convergence study of the distributed algorithms (Sec. III-C/D).

    The paper claims stage-2 price entries "converge to stable values
    after a finite number of rounds (at most n rounds)"; this experiment
    measures actual rounds and message volume on random biconnected
    instances, checks agreement with the centralized payments, and
    demonstrates Algorithm 2's manipulation-resistance (stage 1 against
    distance inflation and neighbour hiding, stage 2 against payment
    deflation). *)

type row = {
  n : int;
  m : int;
  spt_rounds : int;
  payment_rounds : int;
  payment_broadcasts : int;
  agrees : bool;  (** distributed payments == centralized VCG payments *)
  verified_spt_ok : bool;
      (** verified stage 1 reaches the true SPT despite an inflating liar *)
  cheater_accused : bool;
      (** verified stage 2 accuses a payment-deflating node (vacuously
          true when the chosen cheater had nothing to pay) *)
}

val sweep : ?ns:int list -> ?instances:int -> seed:int -> unit -> row list
(** Default [ns = [20; 40; 60; 80]], 3 instances each (rows are
    per-instance). *)

val render : row list -> string
