(** Testing the paper's critique of the GTFT-style traffic model
    (Sec. II-D on refs [1] and [7]).

    Those works assume "each path is l hops long and the l relay nodes
    are chosen with equal probability from the remaining n-1 nodes",
    which the paper calls "unrealistic".  This experiment quantifies how
    unrealistic: under all-to-AP least-cost routing on the paper's own
    UDG deployments, relay duty is {e extremely} concentrated — nodes
    near the access point carry a large constant fraction of all routes,
    while most nodes relay for almost nobody.

    Reported per instance batch:
    - the mean and max relay load (number of sources routed through a
      node), against the uniform-model expectation;
    - the share of total relay work carried by the busiest decile of
      nodes (10% under the uniform assumption);
    - the fraction of nodes that relay for nobody at all (≈ 0 under the
      uniform assumption). *)

type row = {
  n : int;
  mean_load : float;
  max_load : float;
  uniform_expected_max : float;
      (** the uniform model's per-node expectation (every node equally
          likely): total relay slots / n — its max coincides with its
          mean up to sampling noise *)
  top_decile_share : float;  (** fraction of all relaying done by the busiest 10% *)
  idle_fraction : float;  (** nodes that never relay *)
}

val study : ?ns:int list -> ?instances:int -> seed:int -> unit -> row list
(** UDG (paper region, range 300 m), uniform node costs in [\[1, 10)];
    all sources to the access point.  Defaults: [ns = [100; 200; 300]],
    5 instances. *)

val render : row list -> string
