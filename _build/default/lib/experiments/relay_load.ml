type row = {
  n : int;
  mean_load : float;
  max_load : float;
  uniform_expected_max : float;
  top_decile_share : float;
  idle_fraction : float;
}

let study ?(ns = [ 100; 200; 300 ]) ?(instances = 5) ~seed () =
  let rng = Wnet_prng.Rng.create seed in
  List.map
    (fun n ->
      let loads = ref [] in
      for _ = 1 to instances do
        let child = Wnet_prng.Rng.split rng in
        let t = Wnet_topology.Udg.paper_instance child ~n in
        let costs = Wnet_topology.Udg.uniform_node_costs child ~n ~lo:1.0 ~hi:10.0 in
        let g = Wnet_topology.Udg.node_graph t ~costs in
        let load = Array.make n 0 in
        let outcomes = Wnet_core.Unicast.all_to_root g ~root:0 in
        Array.iter
          (fun o ->
            match o with
            | None -> ()
            | Some r ->
              Array.iter
                (fun k -> load.(k) <- load.(k) + 1)
                (Wnet_graph.Path.relays r.Wnet_core.Unicast.path))
          outcomes;
        loads := load :: !loads
      done;
      (* pool per-node loads over the instances *)
      let all = Array.concat !loads in
      let total = Array.fold_left ( + ) 0 all in
      let nodes = Array.length all in
      let sorted = Array.map float_of_int all in
      Array.sort (fun a b -> compare b a) sorted;
      let decile = max 1 (nodes / 10) in
      let top =
        Array.fold_left ( +. ) 0.0 (Array.sub sorted 0 decile)
      in
      let idle = Array.fold_left (fun acc l -> if l = 0 then acc + 1 else acc) 0 all in
      {
        n;
        mean_load = float_of_int total /. float_of_int nodes;
        max_load = (if nodes = 0 then 0.0 else sorted.(0));
        uniform_expected_max = float_of_int total /. float_of_int nodes;
        top_decile_share =
          (if total = 0 then nan else top /. float_of_int total);
        idle_fraction = float_of_int idle /. float_of_int nodes;
      })
    ns

let render rows =
  let table =
    Wnet_stats.Table.make
      ~headers:
        [
          "n"; "mean load"; "max load"; "uniform expectation";
          "top-10% share"; "idle nodes";
        ]
  in
  List.iter
    (fun r ->
      Wnet_stats.Table.add_row table
        [
          string_of_int r.n;
          Printf.sprintf "%.2f" r.mean_load;
          Printf.sprintf "%.0f" r.max_load;
          Printf.sprintf "%.2f" r.uniform_expected_max;
          Printf.sprintf "%.0f%%" (100.0 *. r.top_decile_share);
          Printf.sprintf "%.0f%%" (100.0 *. r.idle_fraction);
        ])
    rows;
  Wnet_stats.Table.render table
