lib/experiments/scheme_ablation.ml: Array Float List Payment_scheme Printf Wnet_core Wnet_geom Wnet_graph Wnet_prng Wnet_stats Wnet_topology
