lib/experiments/speed.mli:
