lib/experiments/collusion_exp.ml: Array Collusion List Payment_scheme Printf Unicast Wnet_core Wnet_graph Wnet_mech Wnet_prng Wnet_stats Wnet_topology
