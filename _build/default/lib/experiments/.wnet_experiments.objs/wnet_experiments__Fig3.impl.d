lib/experiments/fig3.ml: Link_cost List Overpayment Printf Wnet_core Wnet_geom Wnet_prng Wnet_stats Wnet_topology
