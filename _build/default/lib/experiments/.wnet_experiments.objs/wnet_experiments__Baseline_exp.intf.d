lib/experiments/baseline_exp.mli:
