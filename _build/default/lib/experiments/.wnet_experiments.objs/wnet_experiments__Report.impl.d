lib/experiments/report.ml: Agent_model_exp Baseline_exp Buffer Collusion_exp Distributed_exp Fig3 Lifetime_exp Node_model Option Printf Scheme_ablation Second_path_exp Speed String Wnet_core
