lib/experiments/report.mli:
