lib/experiments/distributed_exp.ml: Array List Wnet_dsim Wnet_graph Wnet_prng Wnet_stats Wnet_topology
