lib/experiments/distributed_exp.mli:
