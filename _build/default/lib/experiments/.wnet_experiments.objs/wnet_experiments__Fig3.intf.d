lib/experiments/fig3.mli: Wnet_core Wnet_stats
