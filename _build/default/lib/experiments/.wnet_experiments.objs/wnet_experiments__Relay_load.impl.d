lib/experiments/relay_load.ml: Array List Printf Wnet_core Wnet_graph Wnet_prng Wnet_stats Wnet_topology
