lib/experiments/baseline_exp.ml: Array List Printf Wnet_baselines Wnet_core Wnet_geom Wnet_prng Wnet_stats Wnet_topology
