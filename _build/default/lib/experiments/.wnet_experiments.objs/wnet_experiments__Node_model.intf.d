lib/experiments/node_model.mli: Wnet_core
