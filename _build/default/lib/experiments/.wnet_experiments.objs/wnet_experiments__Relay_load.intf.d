lib/experiments/relay_load.mli:
