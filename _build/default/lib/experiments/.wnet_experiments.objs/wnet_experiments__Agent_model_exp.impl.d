lib/experiments/agent_model_exp.ml: Array Edge_unicast Fun List Overpayment Printf Unicast Wnet_core Wnet_geom Wnet_graph Wnet_prng Wnet_stats Wnet_topology
