lib/experiments/lifetime_exp.ml: List Printf Wnet_geom Wnet_lifetime Wnet_prng Wnet_stats Wnet_topology
