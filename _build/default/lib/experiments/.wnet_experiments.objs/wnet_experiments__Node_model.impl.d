lib/experiments/node_model.ml: Array Fig3 Fun List Overpayment Printf Unicast Wnet_core Wnet_prng Wnet_stats Wnet_topology
