lib/experiments/collusion_exp.mli:
