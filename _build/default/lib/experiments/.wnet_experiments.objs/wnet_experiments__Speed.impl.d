lib/experiments/speed.ml: Array Avoid Dijkstra Float Graph List Printf Unix Wnet_geom Wnet_graph Wnet_prng Wnet_stats Wnet_topology
