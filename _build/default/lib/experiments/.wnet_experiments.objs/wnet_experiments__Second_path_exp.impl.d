lib/experiments/second_path_exp.ml: Float Hashtbl List Option Printf Wnet_graph Wnet_prng Wnet_stats Wnet_topology
