lib/experiments/scheme_ablation.mli:
