lib/experiments/second_path_exp.mli:
