lib/experiments/agent_model_exp.mli:
