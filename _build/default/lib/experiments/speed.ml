open Wnet_graph

type row = {
  n : int;
  m : int;
  relays : int;
  fast_ms : float;
  naive_ms : float;
  speedup : float;
}

let time_ms f =
  let t0 = Unix.gettimeofday () in
  let result = f () in
  (result, (Unix.gettimeofday () -. t0) *. 1000.0)

let median l =
  let a = Array.of_list l in
  Array.sort compare a;
  a.(Array.length a / 2)

let instance rng ~n =
  (* Node-cost UDG in a long corridor: the LCP to the far end crosses
     many relays, which is where the naive method's extra Dijkstras bite
     (a square deployment keeps paths short and hides the asymptotics). *)
  let region = Wnet_geom.Region.make ~width:8000.0 ~height:400.0 in
  let t = Wnet_topology.Udg.generate rng ~region ~n ~range:300.0 in
  let costs = Wnet_topology.Udg.uniform_node_costs rng ~n ~lo:1.0 ~hi:10.0 in
  Wnet_topology.Udg.node_graph t ~costs

let farthest_from g root =
  let tree = Dijkstra.node_weighted g ~source:root in
  let best = ref root and best_d = ref neg_infinity in
  Array.iteri
    (fun v d ->
      if v <> root && Float.is_finite d && d > !best_d then begin
        best := v;
        best_d := d
      end)
    tree.Dijkstra.dist;
  !best

let sweep ?(ns = [ 100; 200; 300; 400; 500 ]) ?(repeats = 3) ~seed () =
  let rng = Wnet_prng.Rng.create seed in
  List.map
    (fun n ->
      let g = instance rng ~n in
      let src = farthest_from g 0 in
      let fasts = ref [] and naives = ref [] and relays = ref 0 in
      for _ = 1 to repeats do
        let rf, tf = time_ms (fun () -> Avoid.replacement_costs_fast g ~src ~dst:0) in
        let _, tn = time_ms (fun () -> Avoid.replacement_costs_naive g ~src ~dst:0) in
        fasts := tf :: !fasts;
        naives := tn :: !naives;
        match rf with
        | Some r -> relays := max 0 (Array.length r.Avoid.path - 2)
        | None -> ()
      done;
      let fast_ms = median !fasts and naive_ms = median !naives in
      {
        n;
        m = Graph.m g;
        relays = !relays;
        fast_ms;
        naive_ms;
        speedup = naive_ms /. Float.max fast_ms 1e-6;
      })
    ns

let render rows =
  let table =
    Wnet_stats.Table.make
      ~headers:[ "n"; "m"; "relays"; "fast (ms)"; "naive (ms)"; "speedup" ]
  in
  List.iter
    (fun r ->
      Wnet_stats.Table.add_row table
        [
          string_of_int r.n;
          string_of_int r.m;
          string_of_int r.relays;
          Printf.sprintf "%.3f" r.fast_ms;
          Printf.sprintf "%.3f" r.naive_ms;
          Printf.sprintf "%.1fx" r.speedup;
        ])
    rows;
  Wnet_stats.Table.render table
