open Wnet_core

type row = {
  n : int;
  node_ior : float;
  node_tor : float;
  edge_ior : float;
  edge_tor : float;
  sources : int;
}

let edge_samples g ~root =
  let n = Wnet_graph.Egraph.n g in
  let acc = ref [] in
  for src = 0 to n - 1 do
    if src <> root then
      match Edge_unicast.run g ~src ~dst:root with
      | None -> ()
      | Some r ->
        acc :=
          {
            Overpayment.source = src;
            payment = Edge_unicast.total_payment r;
            lcp_cost = r.Edge_unicast.dist;
            hops = Array.length r.Edge_unicast.path_edges;
          }
          :: !acc
  done;
  !acc

let sweep ?(ns = [ 60; 100; 140 ]) ?(instances = 5) ~seed () =
  let rng = Wnet_prng.Rng.create seed in
  List.map
    (fun n ->
      let node_samples = ref [] and edge_samples_acc = ref [] in
      for _ = 1 to instances do
        let child = Wnet_prng.Rng.split rng in
        let topo =
          Wnet_topology.Udg.generate child
            ~region:(Wnet_geom.Region.square 1200.0) ~n ~range:300.0
        in
        (* node-agent instance *)
        let costs = Wnet_topology.Udg.uniform_node_costs child ~n ~lo:1.0 ~hi:5.0 in
        let ng = Wnet_topology.Udg.node_graph topo ~costs in
        let results =
          Unicast.all_to_root ng ~root:0 |> Array.to_list |> List.filter_map Fun.id
        in
        node_samples := Overpayment.of_unicast results @ !node_samples;
        (* edge-agent instance on the same adjacency *)
        let eg =
          Wnet_graph.Egraph.create ~n
            ~edges:
              (List.map
                 (fun (u, v) ->
                   (u, v, Wnet_prng.Rng.float_range child 1.0 5.0))
                 topo.Wnet_topology.Udg.edges)
        in
        edge_samples_acc := edge_samples eg ~root:0 @ !edge_samples_acc
      done;
      let node_study = Overpayment.study !node_samples in
      let edge_study = Overpayment.study !edge_samples_acc in
      {
        n;
        node_ior = node_study.Overpayment.ior;
        node_tor = node_study.Overpayment.tor;
        edge_ior = edge_study.Overpayment.ior;
        edge_tor = edge_study.Overpayment.tor;
        sources = List.length node_study.Overpayment.samples;
      })
    ns

let render rows =
  let table =
    Wnet_stats.Table.make
      ~headers:[ "n"; "node IOR"; "node TOR"; "edge IOR"; "edge TOR"; "sources" ]
  in
  List.iter
    (fun r ->
      Wnet_stats.Table.add_row table
        [
          string_of_int r.n;
          Printf.sprintf "%.3f" r.node_ior;
          Printf.sprintf "%.3f" r.node_tor;
          Printf.sprintf "%.3f" r.edge_ior;
          Printf.sprintf "%.3f" r.edge_tor;
          string_of_int r.sources;
        ])
    rows;
  Wnet_stats.Table.render table
