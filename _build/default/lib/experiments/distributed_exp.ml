type row = {
  n : int;
  m : int;
  spt_rounds : int;
  payment_rounds : int;
  payment_broadcasts : int;
  agrees : bool;
  verified_spt_ok : bool;
  cheater_accused : bool;
}

let one_instance rng ~n =
  match
    Wnet_topology.Gnp.biconnected_graph rng ~n ~p:(4.0 /. float_of_int n)
      ~cost_lo:1.0 ~cost_hi:10.0 ~max_tries:200
  with
  | None -> None
  | Some g ->
    let root = 0 in
    let spt = Wnet_dsim.Spt_protocol.run g ~root in
    let pay = Wnet_dsim.Payment_protocol.run g ~root in
    let agrees =
      Wnet_dsim.Spt_protocol.matches_centralized spt g ~root
      && Wnet_dsim.Payment_protocol.agrees_with_centralized pay g
    in
    let liar = 1 + Wnet_prng.Rng.int rng (n - 1) in
    let behaviours v =
      if v = liar then Wnet_dsim.Spt_protocol.Inflate_distance 1000.0
      else Wnet_dsim.Spt_protocol.Honest
    in
    let vspt = Wnet_dsim.Spt_protocol.run ~behaviours ~verified:true g ~root in
    let cheat = 1 + Wnet_prng.Rng.int rng (n - 1) in
    let adversaries v =
      if v = cheat then Wnet_dsim.Payment_protocol.Deflate_entries 0.5
      else Wnet_dsim.Payment_protocol.Honest
    in
    let vpay =
      Wnet_dsim.Payment_protocol.run ~adversaries ~verify:true g ~root
    in
    let cheater_had_entries = pay.Wnet_dsim.Payment_protocol.payments.(cheat) <> [] in
    Some
      {
        n;
        m = Wnet_graph.Graph.m g;
        spt_rounds = spt.Wnet_dsim.Spt_protocol.stats.Wnet_dsim.Engine.rounds;
        payment_rounds = pay.Wnet_dsim.Payment_protocol.stats.Wnet_dsim.Engine.rounds;
        payment_broadcasts =
          pay.Wnet_dsim.Payment_protocol.stats.Wnet_dsim.Engine.broadcasts;
        agrees;
        verified_spt_ok =
          Wnet_dsim.Spt_protocol.matches_centralized vspt g ~root;
        cheater_accused =
          (not cheater_had_entries)
          || List.exists
               (fun (_, accused) -> accused = cheat)
               vpay.Wnet_dsim.Payment_protocol.accusations;
      }

let sweep ?(ns = [ 20; 40; 60; 80 ]) ?(instances = 3) ~seed () =
  let rng = Wnet_prng.Rng.create seed in
  List.concat_map
    (fun n ->
      List.filter_map
        (fun _ -> one_instance (Wnet_prng.Rng.split rng) ~n)
        (List.init instances (fun i -> i)))
    ns

let render rows =
  let table =
    Wnet_stats.Table.make
      ~headers:
        [
          "n"; "m"; "SPT rounds"; "pay rounds"; "pay broadcasts";
          "= centralized"; "verified SPT ok"; "cheater accused";
        ]
  in
  List.iter
    (fun r ->
      Wnet_stats.Table.add_row table
        [
          string_of_int r.n;
          string_of_int r.m;
          string_of_int r.spt_rounds;
          string_of_int r.payment_rounds;
          string_of_int r.payment_broadcasts;
          string_of_bool r.agrees;
          string_of_bool r.verified_spt_ok;
          string_of_bool r.cheater_accused;
        ])
    rows;
  Wnet_stats.Table.render table
