(** Ablation: who is the agent — nodes (this paper) or edges
    (Nisan–Ronen, the paper's Sec. II-D baseline)?

    On identical UDG topologies with comparable cost scales, runs both
    VCG mechanisms for every source-to-AP unicast and compares
    overpayment.  Edge agents are more numerous (one per link) but each
    is easier to replace (a single link, not a whole router), so the two
    models price the same network differently — this experiment measures
    by how much. *)

type row = {
  n : int;
  node_ior : float;
  node_tor : float;
  edge_ior : float;
  edge_tor : float;
  sources : int;
}

val sweep : ?ns:int list -> ?instances:int -> seed:int -> unit -> row list
(** Dense UDG (1200 m square, range 300 m); node costs uniform in
    [\[1, 5)], edge costs uniform in [\[1, 5)] (independent draws).
    Defaults: [ns = [60; 100; 140]], 5 instances. *)

val render : row list -> string
