open Wnet_core

type row = {
  n : int;
  sources : int;
  monopolized : int;
  mean_ratio : float;
  max_ratio : float;
  off_path_paid : float;
}

type topology = Dense_udg | Gnp of float

let instance_graph rng topology ~n =
  match topology with
  | Dense_udg ->
    let t =
      Wnet_topology.Udg.generate rng ~region:(Wnet_geom.Region.square 1000.0) ~n
        ~range:300.0
    in
    let costs = Wnet_topology.Udg.uniform_node_costs rng ~n ~lo:1.0 ~hi:10.0 in
    Wnet_topology.Udg.node_graph t ~costs
  | Gnp p ->
    Wnet_topology.Gnp.connected_graph rng ~n ~p ~cost_lo:1.0 ~cost_hi:10.0

let one_instance rng topology ~n acc =
  let g = instance_graph rng topology ~n in
  let ratios, monopolized, off_path = acc in
  let ratios = ref ratios and monopolized = ref monopolized and off_path = ref off_path in
  for src = 1 to n - 1 do
    match Payment_scheme.run Payment_scheme.Vcg g ~src ~dst:0 with
    | None -> ()
    | Some vcg ->
      let p = Payment_scheme.total_payment vcg in
      if p > 0.0 && Float.is_finite p then begin
        match Payment_scheme.run Payment_scheme.Neighbourhood g ~src ~dst:0 with
        | None -> ()
        | Some nb ->
          let pt = Payment_scheme.total_payment nb in
          if Float.is_finite pt then begin
            ratios := (pt /. p) :: !ratios;
            let off =
              let count = ref 0 in
              Array.iteri
                (fun v pay ->
                  if
                    pay > 1e-12
                    && not (Wnet_graph.Path.mem nb.Payment_scheme.path v)
                  then incr count)
                nb.Payment_scheme.payments;
              !count
            in
            off_path := float_of_int off :: !off_path
          end
          else incr monopolized
      end
  done;
  (!ratios, !monopolized, !off_path)

let sweep ?(topology = Gnp 0.3) ?(ns = [ 50; 100; 150 ]) ?(instances = 5) ~seed () =
  let rng = Wnet_prng.Rng.create seed in
  List.map
    (fun n ->
      let acc = ref ([], 0, []) in
      for _ = 1 to instances do
        acc := one_instance (Wnet_prng.Rng.split rng) topology ~n !acc
      done;
      let ratios, monopolized, off_path = !acc in
      match ratios with
      | [] ->
        {
          n;
          sources = 0;
          monopolized;
          mean_ratio = nan;
          max_ratio = nan;
          off_path_paid = nan;
        }
      | _ ->
        let s = Wnet_stats.Summary.of_list ratios in
        {
          n;
          sources = List.length ratios;
          monopolized;
          mean_ratio = s.Wnet_stats.Summary.mean;
          max_ratio = s.Wnet_stats.Summary.max;
          off_path_paid = Wnet_stats.Summary.mean off_path;
        })
    ns

let render rows =
  let table =
    Wnet_stats.Table.make
      ~headers:
        [
          "n"; "sources"; "monopolized"; "mean p~/p"; "max p~/p";
          "off-path paid (avg)";
        ]
  in
  List.iter
    (fun r ->
      Wnet_stats.Table.add_row table
        [
          string_of_int r.n;
          string_of_int r.sources;
          string_of_int r.monopolized;
          Printf.sprintf "%.3f" r.mean_ratio;
          Printf.sprintf "%.3f" r.max_ratio;
          Printf.sprintf "%.2f" r.off_path_paid;
        ])
    rows;
  Wnet_stats.Table.render table
