(** Wall-clock comparison of Algorithm 1 against the naive payment
    computation (the Sec. III-B complexity claim:
    [O(n log n + m)] vs [O(n^2 log n + n m)]).

    Bechamel micro-benchmarks in [bench/main.ml] give rigorous per-call
    timings; this module provides the cheap sweep used by the CLI and
    EXPERIMENTS.md, reporting medians over several instances. *)

type row = {
  n : int;
  m : int;  (** edges of the measured instance *)
  relays : int;  (** relays on the measured LCP *)
  fast_ms : float;
  naive_ms : float;
  speedup : float;
}

val sweep : ?ns:int list -> ?repeats:int -> seed:int -> unit -> row list
(** UDG instances in an 8000 m × 400 m corridor (range 300 m) — long
    LCPs with many relays, the regime where the naive method's one
    Dijkstra per relay dominates; source = farthest reachable node from
    the access point.  Default [ns = [100; 200; 300; 400; 500]],
    [repeats = 3] (median). *)

val render : row list -> string
