.PHONY: all test bench smoke check check-quick experiments full clean

all:
	dune build @all

test:
	dune runtest

# Times the batch payment engine (sequential vs WNET_DOMAINS-sized domain
# pool, graph-copy vs zero-copy avoidance), the incremental session
# engine against from-scratch batches, the server coalesced-burst vs
# eager-flush rows, plus the Bechamel micro-benches, and leaves the
# machine-readable trajectory in bench/results/BENCH_latest.json (+ a
# timestamped copy).  The gate compares the fresh headline wall-clocks
# against the previous BENCH_latest.json and fails on any >20% slowdown
# (baselines normalised by a machine-speed canary; suspect rows get one
# re-measurement before they can fail the run).
bench:
	dune exec bench/main.exe -- micro --json --gate

# End-to-end socket front-end check: real `unicast listen` process on a
# Unix-domain socket, driven through `unicast client`, then SIGINT drain.
smoke:
	sh scripts/smoke_server.sh

# The whole bar: build, tier-1 tests, socket smoke, then the gated
# benchmark run.
check: all test smoke bench

# The fast bar for CI and pre-push: build, tier-1 tests, and the socket
# smoke — everything deterministic, nothing wall-clock-gated.  The
# timing-sensitive `bench` gate stays out: it needs a quiet machine and
# a previous BENCH_latest.json to compare against.
check-quick: all test smoke

experiments:
	dune exec bench/main.exe -- experiments

full:
	dune exec bench/main.exe -- full

clean:
	dune clean
