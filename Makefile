.PHONY: all test bench microbench microbench-smoke smoke smoke-shard \
	dsim-smoke check check-quick experiments full clean clean-bench

all:
	dune build @all

test:
	dune runtest

# Times the batch payment engine (sequential vs WNET_DOMAINS-sized domain
# pool, graph-copy vs zero-copy avoidance), the incremental session
# engine against from-scratch batches, the server coalesced-burst vs
# eager-flush rows, plus the Bechamel micro-benches, and leaves the
# machine-readable trajectory in bench/results/BENCH_latest.json (+ a
# timestamped copy).  The gate compares the fresh headline wall-clocks
# against the previous BENCH_latest.json and fails on any >20% slowdown
# (baselines normalised by a machine-speed canary; suspect rows get one
# re-measurement before they can fail the run).
bench: microbench
	dune exec bench/main.exe -- micro --json --gate

# Per-primitive micro suite: one exe per primitive family under
# bench/micro/ (proto encode, proto decode, deque, heap, repair), each
# printing an ns/op table and hard-asserting ZERO minor-heap words per
# operation on the steady-state codec paths (native builds).  `make
# bench` runs these first so an allocation regression fails fast,
# before the wall-clock suites spend minutes; the same primitives also
# land as gated "micro/..." rows in BENCH_latest.json.
MICRO_BENCHES = bench_proto_encode bench_proto_decode bench_deque \
	bench_heap bench_repair bench_dijkstra bench_avoid bench_avoid_region

microbench:
	dune build bench/micro
	@for b in $(MICRO_BENCHES); do \
	  dune exec --no-build bench/micro/$$b.exe || exit 1; \
	done

# CI variant: a single timed rep per primitive, no timing to gate on —
# but the zero-allocation assertions still run and still fail the build.
microbench-smoke:
	dune build bench/micro
	@for b in $(MICRO_BENCHES); do \
	  dune exec --no-build bench/micro/$$b.exe -- --smoke || exit 1; \
	done

# End-to-end socket front-end check: real `unicast listen` process on a
# Unix-domain socket, driven through `unicast client`, then SIGINT drain.
smoke:
	sh scripts/smoke_server.sh

# Sharded-server check: the same client transcript against --shards 1
# and --shards 2 must produce byte-identical payments, the per-shard
# stats rows must sum to the server totals, and SIGINT must drain both
# shards.
smoke-shard:
	sh scripts/smoke_shard.sh

# Distributed-simulation smoke: small-n sync and async runs of both dsim
# scenarios with the --oracle cross-check against the centralized
# references — nonzero exit on any fixed-point mismatch.
dsim-smoke:
	dune build bin/unicast.exe
	dune exec --no-build bin/unicast.exe -- dsim -n 200 --seed 7 --oracle
	dune exec --no-build bin/unicast.exe -- dsim -n 200 --seed 7 --mode async --oracle
	dune exec --no-build bin/unicast.exe -- dsim -n 200 --seed 7 --scenario costshare --oracle
	dune exec --no-build bin/unicast.exe -- dsim -n 200 --seed 7 --scenario costshare --mode async --oracle

# The whole bar: build, tier-1 tests, socket smoke, then the gated
# benchmark run.
check: all test smoke smoke-shard bench

# The fast bar for CI and pre-push: build, tier-1 tests, the socket
# smoke, the micro-suite smoke (allocation assertions, no timing), and
# the dsim oracle smoke — everything deterministic, nothing
# wall-clock-gated.  The timing-sensitive `bench` gate stays out: it
# needs a quiet machine and a previous BENCH_latest.json to compare
# against.
check-quick: all test smoke smoke-shard microbench-smoke dsim-smoke

experiments:
	dune exec bench/main.exe -- experiments

full:
	dune exec bench/main.exe -- full

clean:
	dune clean

# Drop the dated bench snapshots that accumulate one per `make bench`
# run; BENCH_latest.json (the regression-gate baseline) is kept.
clean-bench:
	rm -f bench/results/BENCH_2*.json
