.PHONY: all test bench check experiments full clean

all:
	dune build @all

test:
	dune runtest

# Times the batch payment engine (sequential vs WNET_DOMAINS-sized domain
# pool, graph-copy vs zero-copy avoidance), the incremental session
# engine against from-scratch batches, plus the Bechamel micro-benches,
# and leaves the machine-readable trajectory in
# bench/results/BENCH_latest.json (+ a timestamped copy).  The gate
# compares the fresh headline (batch + session) wall-clocks against the
# previous BENCH_latest.json and fails on any >20% slowdown.
bench:
	dune exec bench/main.exe -- micro --json --gate

# The whole bar: build, tier-1 tests, then the gated benchmark run.
check: all test bench

experiments:
	dune exec bench/main.exe -- experiments

full:
	dune exec bench/main.exe -- full

clean:
	dune clean
