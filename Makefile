.PHONY: all test bench experiments full clean

all:
	dune build @all

test:
	dune runtest

# Times the batch payment engine (sequential vs WNET_DOMAINS-sized domain
# pool, graph-copy vs zero-copy avoidance) plus the Bechamel micro-benches,
# and leaves the machine-readable trajectory in
# bench/results/BENCH_latest.json (+ a timestamped copy).
bench:
	dune exec bench/main.exe -- micro --json

experiments:
	dune exec bench/main.exe -- experiments

full:
	dune exec bench/main.exe -- full

clean:
	dune clean
