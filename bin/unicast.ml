(* Command-line interface to the truthful-unicast library.

   unicast lcp GRAPH --src S --dst D
   unicast pay GRAPH --src S --dst D [--scheme vcg|neighbourhood]
   unicast batch GRAPH [--root R] [--domains K]
   unicast check GRAPH --src S --dst D [--trials N]
   unicast distributed GRAPH [--root R] [--verify]
   unicast experiment NAME [--instances K] [--seed S] [--domains K]
   unicast serve GRAPH [--root R] [--model node|link] [--domains K]
   unicast listen GRAPH (--socket PATH | --port N) [--model node|link] ...
   unicast client (--socket PATH | --port N [--host H])

   GRAPH is a text file in the Graph_io format (see `unicast format`).
   Batch payments and the Figure 3 sweeps run on a Wnet_par domain pool
   sized by --domains (default: WNET_DOMAINS, else the core count);
   results are identical for every pool size. *)

open Cmdliner
open Wnet_core

let read_graph path = Wnet_graph.Graph_io.parse_file path

(* -- common args -- *)

let graph_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc:"Graph file.")

let src_arg =
  Arg.(required & opt (some int) None & info [ "src" ] ~docv:"NODE" ~doc:"Source node.")

let dst_arg =
  Arg.(value & opt int 0 & info [ "dst" ] ~docv:"NODE" ~doc:"Destination (default: the access point 0).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* -- lcp -- *)

let lcp_cmd =
  let run path src dst =
    let g = read_graph path in
    match Unicast.run g ~src ~dst with
    | None -> (print_endline "unreachable"; 1)
    | Some r ->
      Format.printf "path: %a@.relay cost: %g@." Wnet_graph.Path.pp r.Unicast.path
        r.Unicast.lcp_cost;
      0
  in
  Cmd.v (Cmd.info "lcp" ~doc:"Least cost path between two nodes.")
    Term.(const run $ graph_arg $ src_arg $ dst_arg)

(* -- pay -- *)

let scheme_arg =
  let schemes = [ ("vcg", Payment_scheme.Vcg); ("neighbourhood", Payment_scheme.Neighbourhood) ] in
  Arg.(value & opt (enum schemes) Payment_scheme.Vcg
       & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Payment scheme: $(b,vcg) or $(b,neighbourhood).")

let pay_cmd =
  let run path src dst scheme =
    let g = read_graph path in
    match Payment_scheme.run scheme g ~src ~dst with
    | None -> (print_endline "unreachable"; 1)
    | Some r ->
      Format.printf "path: %a@.relay cost: %g@." Wnet_graph.Path.pp
        r.Payment_scheme.path r.Payment_scheme.lcp_cost;
      Array.iteri
        (fun v p -> if p <> 0.0 then Format.printf "pay node %d: %g@." v p)
        r.Payment_scheme.payments;
      Format.printf "total: %g@." (Payment_scheme.total_payment r);
      0
  in
  Cmd.v (Cmd.info "pay" ~doc:"VCG payments for a unicast.")
    Term.(const run $ graph_arg $ src_arg $ dst_arg $ scheme_arg)

(* -- batch -- *)

let domains_arg =
  Arg.(value & opt (some int) None
       & info [ "domains" ] ~docv:"K"
           ~doc:"Domain pool size (default: $(b,WNET_DOMAINS), else the \
                 recommended core count).  Results are identical for every \
                 value.")

let batch_cmd =
  let root =
    Arg.(value & opt int 0 & info [ "root" ] ~docv:"NODE" ~doc:"Access point.")
  in
  let run path root domains =
    let g = read_graph path in
    Wnet_par.with_pool ?domains (fun pool ->
        let batch = Unicast.all_to_root ~pool g ~root in
        let served = ref 0 and unbounded = ref 0 and charged = ref 0.0 in
        Array.iteri
          (fun src outcome ->
            match outcome with
            | None -> ()
            | Some r ->
              incr served;
              let p = Unicast.total_payment r in
              if p < infinity then charged := !charged +. p
              else incr unbounded;
              Format.printf "src %d: path %a, charge %g@." src
                Wnet_graph.Path.pp r.Unicast.path p)
          batch;
        Format.printf "served %d/%d sources on %d domain(s), total charges %g@."
          !served
          (Wnet_graph.Graph.n g - 1)
          (Wnet_par.size pool) !charged;
        if !unbounded > 0 then
          (* A cut-vertex relay has no replacement path: VCG payment is
             unbounded unless the graph is biconnected (Sec. III-G). *)
          Format.printf
            "%d source(s) with unbounded charge (cut-vertex relay) excluded \
             from the total@."
            !unbounded);
    0
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"All-to-access-point payments in one parallel batch.")
    Term.(const run $ graph_arg $ root $ domains_arg)

(* -- check -- *)

let check_cmd =
  let trials =
    Arg.(value & opt int 500 & info [ "trials" ] ~docv:"N" ~doc:"Falsifier trials.")
  in
  let run path src dst trials seed =
    let g = read_graph path in
    let truth = Wnet_graph.Graph.costs g in
    let m = Unicast.mechanism g ~src ~dst in
    let rng = Wnet_prng.Rng.create seed in
    let ic = Wnet_mech.Properties.random_ic_violations rng m ~truth ~trials ~lie_bound:100.0 in
    let ir = Wnet_mech.Properties.ir_violations m ~truth in
    Format.printf "incentive-compatibility violations: %d@." (List.length ic);
    List.iter (Format.printf "  %a@." Wnet_mech.Properties.pp_violation) ic;
    Format.printf "individual-rationality violations: %d@." (List.length ir);
    Format.printf "biconnected: %b@." (Wnet_graph.Connectivity.is_biconnected g);
    if ic = [] && ir = [] then 0 else 1
  in
  Cmd.v (Cmd.info "check" ~doc:"Run the strategyproofness falsifiers on an instance.")
    Term.(const run $ graph_arg $ src_arg $ dst_arg $ trials $ seed_arg)

(* -- distributed -- *)

let distributed_cmd =
  let root = Arg.(value & opt int 0 & info [ "root" ] ~docv:"NODE" ~doc:"Access point.") in
  let verify = Arg.(value & flag & info [ "verify" ] ~doc:"Algorithm 2 verification.") in
  let run path root verify =
    let g = read_graph path in
    let spt = Wnet_dsim.Spt_protocol.run ~verified:verify g ~root in
    Format.printf "stage 1: %d rounds, matches centralized: %b@."
      spt.Wnet_dsim.Spt_protocol.stats.Wnet_dsim.Engine.rounds
      (Wnet_dsim.Spt_protocol.matches_centralized spt g ~root);
    let pay = Wnet_dsim.Payment_protocol.run ~verify g ~root in
    Format.printf "stage 2: %d rounds, %d broadcasts, agrees with centralized: %b@."
      pay.Wnet_dsim.Payment_protocol.stats.Wnet_dsim.Engine.rounds
      pay.Wnet_dsim.Payment_protocol.stats.Wnet_dsim.Engine.broadcasts
      (Wnet_dsim.Payment_protocol.agrees_with_centralized pay g);
    Array.iteri
      (fun i table ->
        if table <> [] then begin
          Format.printf "node %d pays:" i;
          List.iter (fun (k, p) -> Format.printf " %d:%g" k p) table;
          Format.printf "@."
        end)
      pay.Wnet_dsim.Payment_protocol.payments;
    0
  in
  Cmd.v (Cmd.info "distributed" ~doc:"Run the distributed protocols on an instance.")
    Term.(const run $ graph_arg $ root $ verify)

(* -- dsim -- *)

let dsim_cmd =
  let graph_opt =
    Arg.(value & pos 0 (some file) None
         & info [] ~docv:"GRAPH"
             ~doc:"Graph file (default: a sparse random connected $(b,gnp) \
                   instance of $(b,--n) nodes).")
  in
  let nodes =
    Arg.(value & opt int 1000
         & info [ "n" ] ~docv:"N" ~doc:"Node count of the generated instance.")
  in
  let root =
    Arg.(value & opt int 0 & info [ "root" ] ~docv:"NODE" ~doc:"Access point.")
  in
  let scenario =
    Arg.(value & opt string "payment"
         & info [ "scenario" ] ~docv:"S"
             ~doc:"$(b,payment) (stage-2 VCG payments) or $(b,costshare) \
                   (budgeted cost-sharing connectivity).")
  in
  let mode =
    Arg.(value & opt string "sync"
         & info [ "mode" ] ~docv:"M"
             ~doc:"$(b,sync) (deterministic parallel rounds) or $(b,async) \
                   (random per-message delays).")
  in
  let oracle =
    Arg.(value & flag
         & info [ "oracle" ]
             ~doc:"Cross-check the fixed point against the centralized \
                   session oracle; nonzero exit on mismatch.")
  in
  let run path n root scenario mode oracle domains seed =
    let g =
      match path with
      | Some p -> read_graph p
      | None ->
        let rng = Wnet_prng.Rng.create seed in
        Wnet_topology.Gnp.connected_graph rng ~n
          ~p:(6.0 /. float_of_int (max n 2))
          ~cost_lo:1.0 ~cost_hi:10.0
    in
    let n = Wnet_graph.Graph.n g in
    let rng = Wnet_prng.Rng.create (seed + 1) in
    let row ~domains ~oracle_ok (stats : Wnet_dsim.Engine.stats) =
      Format.printf
        "dsim scenario=%s mode=%s n=%d domains=%d rounds=%d broadcasts=%d \
         directs=%d deliveries=%d converged=%b tasks=%d/%d oracle=%s@."
        scenario mode n domains stats.Wnet_dsim.Engine.rounds
        stats.Wnet_dsim.Engine.broadcasts stats.Wnet_dsim.Engine.directs
        stats.Wnet_dsim.Engine.deliveries stats.Wnet_dsim.Engine.converged
        stats.Wnet_dsim.Engine.tasks_executed
        stats.Wnet_dsim.Engine.tasks_stolen
        (match oracle_ok with
        | None -> "skipped"
        | Some true -> "ok"
        | Some false -> "MISMATCH");
      match oracle_ok with Some false -> 1 | _ -> 0
    in
    match (scenario, mode) with
    | "payment", "sync" ->
      Wnet_par.with_pool ?domains (fun pool ->
          let o = Wnet_dsim.Payment_protocol.run ~pool g ~root in
          let ok =
            if not oracle then None
            else
              Some (Wnet_dsim.Payment_protocol.agrees_with_centralized o g)
          in
          row ~domains:(Wnet_par.size pool) ~oracle_ok:ok
            o.Wnet_dsim.Payment_protocol.stats)
    | "payment", "async" ->
      let (_, _), astats = Wnet_dsim.Payment_protocol.run_async ~rng g ~root in
      let o = Wnet_dsim.Payment_protocol.run g ~root in
      let ok =
        if not oracle then None
        else Some (Wnet_dsim.Payment_protocol.agrees_with_centralized o g)
      in
      row ~domains:1 ~oracle_ok:ok
        {
          o.Wnet_dsim.Payment_protocol.stats with
          Wnet_dsim.Engine.rounds = 0;
          deliveries = astats.Wnet_dsim.Async_engine.deliveries;
          converged = astats.Wnet_dsim.Async_engine.converged;
        }
    | "costshare", m ->
      let subscriber v = v <> root in
      let budget _ = infinity in
      let parent = Wnet_dsim.Costshare_protocol.tree_parents g ~root in
      let o =
        match m with
        | "sync" ->
          Wnet_par.with_pool ?domains (fun pool ->
              Wnet_dsim.Costshare_protocol.run ~pool ~parents:parent
                ~subscriber ~budget g ~root)
        | "async" ->
          Wnet_dsim.Costshare_protocol.run_async ~parents:parent ~rng
            ~subscriber ~budget g ~root
        | other -> failwith ("unknown mode " ^ other)
      in
      let ok =
        if not oracle then None
        else
          Some
            (Wnet_dsim.Costshare_protocol.matches_centralized o g ~parent
               ~subscriber ~budget)
      in
      row ~domains:(Option.value domains ~default:1)
        ~oracle_ok:ok o.Wnet_dsim.Costshare_protocol.stats
    | s, m -> failwith (Printf.sprintf "unknown scenario/mode %s/%s" s m)
  in
  Cmd.v
    (Cmd.info "dsim"
       ~doc:"Run a distributed-simulation scenario and print one stats row.")
    Term.(const run $ graph_opt $ nodes $ root $ scenario $ mode $ oracle
          $ domains_arg $ seed_arg)

(* -- experiment -- *)

let experiments ~instances ~seed ~csv ~pool name =
  let sweep_out ~title model =
    let points =
      Wnet_experiments.Fig3.overpayment_sweep ~instances ~pool ~seed model
    in
    if csv then
      print_endline (Wnet_stats.Table.to_csv (Wnet_experiments.Fig3.sweep_table points))
    else print_endline (Wnet_experiments.Fig3.render_sweep ~title points)
  in
  match name with
  | "fig3a" | "fig3b" ->
    sweep_out ~title:"Figure 3(a/b): UDG, kappa = 2"
      (Wnet_experiments.Fig3.Udg { kappa = 2.0 })
  | "fig3c" ->
    sweep_out ~title:"Figure 3(c): UDG, kappa = 2.5"
      (Wnet_experiments.Fig3.Udg { kappa = 2.5 })
  | "fig3d" ->
    let buckets =
      Wnet_experiments.Fig3.hop_profile ~instances ~pool ~seed
        (Wnet_experiments.Fig3.Udg { kappa = 2.0 })
    in
    if csv then
      print_endline (Wnet_stats.Table.to_csv (Wnet_experiments.Fig3.hop_table buckets))
    else
      print_endline
        (Wnet_experiments.Fig3.render_hop_profile
           ~title:"Figure 3(d): ratio vs hop distance (UDG, kappa = 2, n = 500)"
           buckets)
  | "fig3e" ->
    sweep_out ~title:"Figure 3(e): random ranges, kappa = 2"
      (Wnet_experiments.Fig3.Random_range { kappa = 2.0 })
  | "fig3f" ->
    sweep_out ~title:"Figure 3(f): random ranges, kappa = 2.5"
      (Wnet_experiments.Fig3.Random_range { kappa = 2.5 })
  | "node-model" ->
    print_endline
      (Wnet_experiments.Node_model.render
         ~title:"Ablation: node-cost model, uniform costs"
         (Wnet_experiments.Node_model.sweep ~instances ~pool ~seed ()))
  | "speed" ->
    print_endline (Wnet_experiments.Speed.render (Wnet_experiments.Speed.sweep ~seed ()))
  | "distributed" ->
    print_endline
      (Wnet_experiments.Distributed_exp.render
         (Wnet_experiments.Distributed_exp.sweep ~instances ~seed ()))
  | "collusion" ->
    print_endline
      (Wnet_experiments.Collusion_exp.render
         (Wnet_experiments.Collusion_exp.study ~instances ~pool ~seed ()))
  | "second-path" ->
    print_endline
      (Wnet_experiments.Second_path_exp.render
         (Wnet_experiments.Second_path_exp.study ~instances ~pool ~seed ()))
  | "agent-model" ->
    print_endline
      (Wnet_experiments.Agent_model_exp.render
         (Wnet_experiments.Agent_model_exp.sweep ~instances ~seed ()))
  | "relay-load" ->
    print_endline
      (Wnet_experiments.Relay_load.render
         (Wnet_experiments.Relay_load.study ~instances ~seed ()))
  | "lifetime" ->
    print_endline
      (Wnet_experiments.Lifetime_exp.render
         (Wnet_experiments.Lifetime_exp.study ~pool ~seed ()))
  | "scheme-ablation" ->
    print_endline
      (Wnet_experiments.Scheme_ablation.render
         (Wnet_experiments.Scheme_ablation.sweep ~instances ~seed ()))
  | "baselines" ->
    print_endline
      (Wnet_experiments.Baseline_exp.render_nuglet
         (Wnet_experiments.Baseline_exp.nuglet_sweep ~instances ~pool ~seed ()));
    print_newline ();
    print_endline
      (Wnet_experiments.Baseline_exp.render_watchdog
         (Wnet_experiments.Baseline_exp.watchdog_sweep ~instances ~pool ~seed ()))
  | name -> failwith ("unknown experiment " ^ name)

let experiment_cmd =
  let exp_name =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"NAME"
             ~doc:"One of: fig3a fig3b fig3c fig3d fig3e fig3f node-model speed \
                   distributed collusion scheme-ablation baselines lifetime \
                   agent-model second-path relay-load.")
  in
  let instances =
    Arg.(value & opt int 10
         & info [ "instances" ] ~docv:"K" ~doc:"Random instances per point (paper: 100).")
  in
  let csv =
    Arg.(value & flag
         & info [ "csv" ] ~doc:"Emit CSV instead of tables (Figure 3 panels only).")
  in
  let run exp_name instances seed csv domains =
    Wnet_par.with_pool ?domains (fun pool ->
        experiments ~instances ~seed ~csv ~pool exp_name);
    0
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate a paper figure or study.")
    Term.(const run $ exp_name $ instances $ seed_arg $ csv $ domains_arg)

(* -- report -- *)

let report_cmd =
  let instances =
    Arg.(value & opt int 10
         & info [ "instances" ] ~docv:"K" ~doc:"Instances per point (paper: 100).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let run instances seed out =
    let report = Wnet_experiments.Report.generate ~instances ~seed () in
    (match out with
    | None -> print_string report
    | Some path ->
      Wnet_experiments.Report.save ~path report;
      Format.printf "wrote %s@." path);
    0
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run every experiment and emit a single markdown reproduction report.")
    Term.(const run $ instances $ seed_arg $ out)

(* -- generate -- *)

let generate_cmd =
  let model =
    Arg.(value & opt string "udg"
         & info [ "model" ] ~docv:"MODEL"
             ~doc:"$(b,udg) (paper region, range 300m, uniform node costs) or \
                   $(b,gnp) (connected G(n, p)).")
  in
  let nodes = Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc:"Node count.") in
  let run model n seed =
    let rng = Wnet_prng.Rng.create seed in
    let g =
      match model with
      | "udg" ->
        let t = Wnet_topology.Udg.paper_instance rng ~n in
        let costs = Wnet_topology.Udg.uniform_node_costs rng ~n ~lo:1.0 ~hi:10.0 in
        Wnet_topology.Udg.node_graph t ~costs
      | "gnp" ->
        Wnet_topology.Gnp.connected_graph rng ~n ~p:(4.0 /. float_of_int (max n 1))
          ~cost_lo:1.0 ~cost_hi:10.0
      | other -> failwith ("unknown model " ^ other)
    in
    print_string (Wnet_graph.Graph_io.to_string g);
    0
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Emit a random instance in the graph file format (to stdout).")
    Term.(const run $ model $ nodes $ seed_arg)

(* -- stats -- *)

let stats_cmd =
  let run path =
    let g = read_graph path in
    Format.printf "%a@." Wnet_graph.Metrics.pp (Wnet_graph.Metrics.compute g);
    Format.printf "degree histogram:";
    List.iter
      (fun (d, c) -> Format.printf " %d:%d" d c)
      (Wnet_graph.Metrics.degree_histogram g);
    Format.printf "@.";
    0
  in
  Cmd.v (Cmd.info "stats" ~doc:"Topology statistics of a graph file.")
    Term.(const run $ graph_arg)

(* -- serve / listen / client -- *)

(* The Wnet_proto line protocol over stdin/stdout or a socket.  One
   incremental payment session stays alive across requests, so an
   access point can absorb cost drift and churn without re-running full
   batches: each `pay` reuses every avoidance Dijkstra the edits since
   the previous `pay` could not have touched, and a burst of edits
   folds into a single cache-invalidation pass. *)

let root_arg =
  Arg.(value & opt int 0 & info [ "root" ] ~docv:"NODE" ~doc:"Access point.")

let model_arg =
  Arg.(value & opt string "node"
       & info [ "model" ] ~docv:"MODEL"
           ~doc:"$(b,node) (Sec. II node costs: cost k c / leave k / pay) or \
                 $(b,link) (Sec. III-F directed link costs: cost u v w / \
                 join v:w .. -- u:w .. / leave k / pay).")

let load_session ~model ~pool ~root path =
  match model with
  | "node" -> Wnet_session.make ~pool ~root (`Node (read_graph path))
  | "link" ->
    Wnet_session.make ~pool ~root
      (`Link (Wnet_graph.Graph_io.parse_digraph_file path))
  | other -> failwith ("unknown model " ^ other)

let print_responses rs =
  List.iter (fun r -> print_endline (Wnet_proto.print_response r)) rs;
  flush stdout

let serve_stdin session =
  print_responses [ Wnet_proto.greeting session ];
  let rec loop () =
    match In_channel.input_line In_channel.stdin with
    | None -> ()
    | Some line -> (
      match Wnet_proto.handle_line session line with
      | `Empty -> loop ()
      | `Reply rs ->
        print_responses rs;
        loop ()
      | `Quit rs -> print_responses rs)
  in
  loop ()

let serve_cmd =
  let run path root model domains =
    Wnet_par.with_pool ?domains (fun pool ->
        serve_stdin (load_session ~model ~pool ~root path));
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Incremental payment session over stdin/stdout: apply cost \
             changes and churn, re-collect payments without full batches.")
    Term.(const run $ graph_arg $ root_arg $ model_arg $ domains_arg)

let socket_arg =
  Arg.(value & opt (some string) None
       & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let port_arg =
  Arg.(value & opt (some int) None
       & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port ($(b,0) picks one; printed on startup).")

let host_arg =
  Arg.(value & opt string "127.0.0.1"
       & info [ "host" ] ~docv:"HOST" ~doc:"TCP host (default 127.0.0.1).")

let parse_addr socket port host =
  match (socket, port) with
  | Some path, None -> Wnet_server.Unix_path path
  | None, Some port -> Wnet_server.Tcp { host; port }
  | Some _, Some _ -> failwith "--socket and --port are mutually exclusive"
  | None, None -> failwith "want --socket PATH or --port PORT"

let listen_cmd =
  let idle =
    Arg.(value & opt (some float) None
         & info [ "idle-timeout" ] ~docv:"SECONDS"
             ~doc:"Disconnect a client after this long without a complete \
                   request (default: never).")
  in
  let shards_arg =
    Arg.(value & opt int 1
         & info [ "shards" ] ~docv:"N"
             ~doc:"Serve on $(docv) shards, one domain per shard, each \
                   owning a disjoint set of sessions.  Payments are \
                   bit-identical at every shard count.  Default 1: the \
                   fused single-threaded loop.")
  in
  let sessions_arg =
    Arg.(value & opt int 1
         & info [ "sessions" ] ~docv:"K"
             ~doc:"Host $(docv) independent access-point sessions, each \
                   opened on its own copy of GRAPH.  Clients start on \
                   session 0 and move with the $(b,session N) request.  \
                   Default 1.")
  in
  let run path root model domains socket port host idle_timeout shards
      nsessions =
    if shards < 1 then failwith "--shards must be at least 1";
    if nsessions < 1 then failwith "--sessions must be at least 1";
    let addr = parse_addr socket port host in
    let report (s : Wnet_server.server_stats) =
      Format.printf
        "served %d client(s), %d request(s), %d bytes in, %d bytes out@."
        s.Wnet_server.clients_served s.Wnet_server.requests
        s.Wnet_server.bytes_in s.Wnet_server.bytes_out;
      if Array.length s.Wnet_server.per_shard > 1 then
        Array.iter
          (fun (r : Wnet_server.shard_stats) ->
            Format.printf
              "shard %d: served %d client(s), %d request(s), %d bytes in, \
               %d bytes out@."
              r.Wnet_server.shard r.Wnet_server.served r.Wnet_server.requests
              r.Wnet_server.bytes_in r.Wnet_server.bytes_out)
          s.Wnet_server.per_shard
    in
    let on_listen server =
      (match Wnet_server.addr server with
      | Wnet_server.Unix_path p -> Format.printf "listening on %s@." p
      | Wnet_server.Tcp { host; port } ->
        Format.printf "listening on %s:%d@." host port);
      Format.print_flush ()
    in
    if shards = 1 then
      (* One shard serializes everything anyway, so every session can
         share one work-stealing pool for its payment fan-out. *)
      Wnet_par.with_pool ?domains (fun pool ->
          let sessions =
            Array.init nsessions (fun _ ->
                load_session ~model ~pool ~root path)
          in
          report
            (Wnet_server.run ?idle_timeout ~signals:true ~on_listen addr
               sessions))
    else begin
      (* Wnet_par pools are single-owner, and sessions now live on
         shard domains: each session runs its payments sequentially
         (par ≡ seq bit-identically), parallelism comes from shards. *)
      let sessions =
        Array.init nsessions (fun _ ->
            load_session ~model ~pool:Wnet_par.sequential ~root path)
      in
      report
        (Wnet_server.run ?idle_timeout ~shards ~signals:true ~on_listen addr
           sessions)
    end;
    0
  in
  Cmd.v
    (Cmd.info "listen"
       ~doc:"Serve incremental payment sessions to many concurrent \
             clients over a TCP or Unix-domain socket, optionally sharded \
             across domains ($(b,--shards)) with multiple access-point \
             sessions ($(b,--sessions)).  Requests attached to one session \
             interleave into one deterministic edit stream; SIGINT or \
             SIGTERM drains every shard and exits cleanly.")
    Term.(const run $ graph_arg $ root_arg $ model_arg $ domains_arg
          $ socket_arg $ port_arg $ host_arg $ idle $ shards_arg
          $ sessions_arg)

let client_cmd =
  let batch =
    Arg.(value & opt int 1
         & info [ "batch" ] ~docv:"K"
             ~doc:"Pack up to $(docv) consecutive edit lines ($(b,cost), \
                   $(b,join), $(b,rejoin), $(b,leave)) into one socket \
                   write — one batch frame with $(b,--proto) 2 — so the \
                   server coalesces them into a single invalidation \
                   burst.  Any other line (e.g. $(b,pay)) flushes the \
                   pending pack first.  Default 1: raw pass-through.")
  in
  let verify =
    Arg.(value & flag
         & info [ "verify-responses" ]
             ~doc:"Check every server response against the \
                   $(b,Wnet_proto) grammar: text lines must reprint \
                   byte-identically, decoded proto=2 frames must survive \
                   the text print/parse round-trip (guards wire-format \
                   compatibility, e.g. the stats counter layout).  \
                   Output still passes through; exits nonzero if any \
                   response fails.")
  in
  let proto =
    Arg.(value & opt int 1
         & info [ "proto" ] ~docv:"N"
             ~doc:"Wire protocol: $(b,1) (text lines, default) or \
                   $(b,2) (binary frames — the client negotiates the \
                   upgrade, encodes stdin requests as frames and prints \
                   decoded responses as the equivalent text lines; \
                   needs a proto=2-capable server).")
  in
  let run socket port host batch verify proto =
    if proto <> 1 && proto <> 2 then
      failwith "unsupported --proto (want 1 or 2)";
    let addr = parse_addr socket port host in
    Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
    let fd =
      match addr with
      | Wnet_server.Unix_path path ->
        let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
        Unix.connect fd (Unix.ADDR_UNIX path);
        fd
      | Wnet_server.Tcp { host; port } ->
        let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
        let ip =
          try Unix.inet_addr_of_string host
          with Failure _ -> (Unix.gethostbyname host).Unix.h_addr_list.(0)
        in
        Unix.connect fd (Unix.ADDR_INET (ip, port));
        fd
    in
    let module B = Wnet_proto_bin in
    let rec write_all b off len =
      if len > 0 then begin
        let n = Unix.write fd b off len in
        write_all b (off + n) (len - n)
      end
    in
    (* Shuttle stdin -> socket and socket -> stdout until the server
       closes (it does after `quit`, on idle timeout, and on shutdown).
       Stdin EOF half-closes, so pending replies still arrive.

       With --batch K > 1, stdin is re-chunked on line boundaries: up to
       K consecutive edit lines accumulate locally and leave in one
       write — one proto=2 batch frame — landing at the server inside
       one read so its session coalesces them into a single
       invalidation pass.  A non-edit line (pay, stats, quit, ...) must
       observe every edit before it, so it flushes the pending pack
       first.  A trailing pack that never meets a non-edit line is
       flushed on stdin EOF and, as a last resort, when the server says
       bye — it must never be dropped silently. *)
    let send_str s = write_all (Bytes.of_string s) 0 (String.length s) in
    let pack = Buffer.create 4096 in
    let packed_edits = ref 0 in
    let flush_pack () =
      if Buffer.length pack > 0 then begin
        send_str (Buffer.contents pack);
        Buffer.clear pack;
        packed_edits := 0
      end
    in
    let is_edit line =
      match String.split_on_char ' ' (String.trim line) with
      | ("cost" | "join" | "rejoin" | "leave") :: _ -> true
      | _ -> false
    in
    let feed_line line =
      Buffer.add_string pack line;
      Buffer.add_char pack '\n';
      if is_edit line then begin
        incr packed_edits;
        if !packed_edits >= batch then flush_pack ()
      end
      else flush_pack ()
    in
    (* --proto 2: stdin lines are parsed and shipped as binary frames;
       edits accumulate into one batch frame per --batch K. *)
    let benc = B.enc_create () in
    let bdec = B.dec_create () in
    let bview = B.make_view () in
    let pending = ref [] (* reversed pending edit requests *) in
    let npending = ref 0 in
    let flush_benc () =
      let n = B.enc_pending benc in
      if n > 0 then begin
        write_all (B.enc_buffer benc) (B.enc_offset benc) n;
        B.enc_consume benc n
      end
    in
    let encode_pending () =
      if !npending > 0 then begin
        B.encode_requests benc (List.rev !pending);
        pending := [];
        npending := 0
      end
    in
    let bin_send_req r =
      let edit =
        match r with
        | Wnet_proto.Cost_node _ | Wnet_proto.Cost_link _ | Wnet_proto.Join _
        | Wnet_proto.Rejoin _ | Wnet_proto.Leave _ ->
          true
        | _ -> false
      in
      if edit && batch > 1 then begin
        pending := r :: !pending;
        incr npending;
        if !npending >= batch then begin
          encode_pending ();
          flush_benc ()
        end
      end
      else begin
        encode_pending ();
        B.encode_request benc r;
        flush_benc ()
      end
    in
    let bin_feed_line line =
      match Wnet_proto.parse_request line with
      | Ok None -> ()
      | Error m ->
        (* what a server would answer; no point shipping garbage *)
        print_endline (Wnet_proto.print_response (Wnet_proto.Err m))
      | Ok (Some r) -> bin_send_req r
    in
    let line_sink = if proto = 2 then bin_feed_line else feed_line in
    let partial = Buffer.create 256 in
    let feed_chunk s =
      Buffer.add_string partial s;
      let text = Buffer.contents partial in
      Buffer.clear partial;
      let len = String.length text in
      let start = ref 0 in
      (try
         while true do
           let nl = String.index_from text !start '\n' in
           line_sink (String.sub text !start (nl - !start));
           start := nl + 1
         done
       with Not_found -> ());
      if !start < len then Buffer.add_substring partial text !start (len - !start)
    in
    let feed_eof () =
      if Buffer.length partial > 0 then begin
        line_sink (Buffer.contents partial);
        Buffer.clear partial
      end;
      if proto = 2 then begin
        encode_pending ();
        flush_benc ()
      end
      else flush_pack ()
    in
    (* The satellite of the pack machinery: on ANY path out of the
       shuttle loop, push complete packed edits out before giving up —
       the peer may already be gone, which is fine, but the pack must
       not evaporate locally. *)
    let flush_trailing () =
      try
        if proto = 2 then begin
          encode_pending ();
          flush_benc ()
        end
        else flush_pack ()
      with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) -> ()
    in
    (* --verify-responses: hold every server response to the
       print/parse round-trip.  A canonical text server emits exactly
       [print_response r] per line, so [parse_response] followed by
       [print_response] must reproduce the input bytes; a decoded
       proto=2 frame must survive the same text round-trip. *)
    let verify_ok = ref true in
    let server_partial = Buffer.create 256 in
    let verify_line line =
      let complaint =
        match Wnet_proto.parse_response line with
        | Error m -> Some m
        | Ok r ->
          let printed = Wnet_proto.print_response r in
          if String.equal printed line then None
          else Some (Printf.sprintf "reprints as %S" printed)
      in
      match complaint with
      | None -> ()
      | Some m ->
        verify_ok := false;
        Printf.eprintf "verify-responses: %S: %s\n%!" line m
    in
    let verify_chunk s =
      Buffer.add_string server_partial s;
      let text = Buffer.contents server_partial in
      Buffer.clear server_partial;
      let len = String.length text in
      let start = ref 0 in
      (try
         while true do
           let nl = String.index_from text !start '\n' in
           verify_line (String.sub text !start (nl - !start));
           start := nl + 1
         done
       with Not_found -> ());
      if !start < len then
        Buffer.add_substring server_partial text !start (len - !start)
    in
    (* Server -> stdout.  proto=1 passes bytes through; proto=2 reads
       text lines until the server acks the upgrade with a
       `ready proto=2' banner, then decodes frames and prints each
       response as its text line — downstream consumers see the same
       transcript either way. *)
    let bin_ready = ref false in
    let stream_ok = ref true in
    let rec drain_frames () =
      match B.decode_response bdec bview with
      | `Resp r ->
        let line = Wnet_proto.print_response r in
        print_endline line;
        flush stdout;
        if verify then verify_line line;
        drain_frames ()
      | `Need_more -> true
      | `Corrupt m ->
        Printf.eprintf "client: corrupt frame from server: %s\n%!" m;
        stream_ok := false;
        false
    in
    let in_partial = Buffer.create 256 in
    let rec on_text_chunk text start len =
      if start >= len then true
      else if !bin_ready then begin
        B.dec_feed_string bdec text start (len - start);
        drain_frames ()
      end
      else
        match String.index_from_opt text start '\n' with
        | None ->
          Buffer.add_substring in_partial text start (len - start);
          true
        | Some nl ->
          let line = String.sub text start (nl - start) in
          print_endline line;
          flush stdout;
          if verify then verify_line line;
          (match Wnet_proto.parse_response line with
          | Ok (Wnet_proto.Ready { proto = p; _ }) when p = B.version ->
            bin_ready := true
          | _ -> ());
          on_text_chunk text (nl + 1) len
    in
    let on_server_chunk s =
      if proto = 1 then begin
        if verify then verify_chunk s;
        print_string s;
        flush stdout;
        true
      end
      else if !bin_ready then begin
        B.dec_feed_string bdec s 0 (String.length s);
        drain_frames ()
      end
      else begin
        Buffer.add_string in_partial s;
        let text = Buffer.contents in_partial in
        Buffer.clear in_partial;
        on_text_chunk text 0 (String.length text)
      end
    in
    (* pipeline the upgrade: the server answers the text request first,
       then decodes everything behind it as frames *)
    if proto = 2 then
      send_str (Wnet_proto.print_request (Wnet_proto.Proto { proto = 2 }) ^ "\n");
    let buf = Bytes.create 4096 in
    let rec loop stdin_open =
      let rs = if stdin_open then [ Unix.stdin; fd ] else [ fd ] in
      match Unix.select rs [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop stdin_open
      | readable, _, _ ->
        let server_open =
          if List.mem fd readable then (
            match Unix.read fd buf 0 4096 with
            | 0 -> false
            | n -> on_server_chunk (Bytes.sub_string buf 0 n)
            | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _)
              -> false)
          else true
        in
        if server_open then
          if stdin_open && List.mem Unix.stdin readable then (
            match Unix.read Unix.stdin buf 0 4096 with
            | 0 ->
              if batch > 1 || proto = 2 then feed_eof ();
              Unix.shutdown fd Unix.SHUTDOWN_SEND;
              loop false
            | n ->
              if batch > 1 || proto = 2 then
                feed_chunk (Bytes.sub_string buf 0 n)
              else write_all buf 0 n;
              loop true)
          else loop stdin_open
        else flush_trailing ()
    in
    (try loop true
     with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
       (* server went away mid-write; its remaining replies are gone *)
       ());
    Unix.close fd;
    if verify && Buffer.length server_partial > 0 then
      verify_line (Buffer.contents server_partial);
    if !verify_ok && !stream_ok then 0 else 1
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:"Connect to a $(b,unicast listen) server and shuttle \
             stdin/stdout over the socket (a scriptable netcat).  With \
             $(b,--batch) K, edit lines are packed K per write to drive \
             the server's burst-coalescing path from the wire side; \
             with $(b,--proto) 2 the connection is upgraded to the \
             binary frame codec and the pack travels as one batch \
             frame.")
    Term.(const run $ socket_arg $ port_arg $ host_arg $ batch $ verify
          $ proto)

(* -- format -- *)

let format_cmd =
  let run () =
    print_endline "Graph file format (one declaration per line, # comments):";
    print_endline "  node <id> <cost>     declare a node and its relay cost";
    print_endline "  edge <u> <v>         undirected radio link";
    print_endline "  link <u> <v> <w>     directed link with power cost (digraph format)";
    print_endline "";
    print_endline "Example (the paper's Figure 2 network):";
    print_string
      (Wnet_graph.Graph_io.to_string Examples.fig2.Examples.graph);
    0
  in
  Cmd.v (Cmd.info "format" ~doc:"Describe the graph file format.") Term.(const run $ const ())

let () =
  let doc = "Truthful low-cost unicast in selfish wireless networks (IPDPS 2004)" in
  let info = Cmd.info "unicast" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            lcp_cmd; pay_cmd; batch_cmd; check_cmd; distributed_cmd; dsim_cmd;
            experiment_cmd;
            report_cmd; generate_cmd; stats_cmd; format_cmd; serve_cmd;
            listen_cmd; client_cmd;
          ]))
