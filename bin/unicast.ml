(* Command-line interface to the truthful-unicast library.

   unicast lcp GRAPH --src S --dst D
   unicast pay GRAPH --src S --dst D [--scheme vcg|neighbourhood]
   unicast batch GRAPH [--root R] [--domains K]
   unicast check GRAPH --src S --dst D [--trials N]
   unicast distributed GRAPH [--root R] [--verify]
   unicast experiment NAME [--instances K] [--seed S] [--domains K]
   unicast serve GRAPH [--root R] [--model node|link] [--domains K]

   GRAPH is a text file in the Graph_io format (see `unicast format`).
   Batch payments and the Figure 3 sweeps run on a Wnet_par domain pool
   sized by --domains (default: WNET_DOMAINS, else the core count);
   results are identical for every pool size. *)

open Cmdliner
open Wnet_core

let read_graph path = Wnet_graph.Graph_io.parse_file path

(* -- common args -- *)

let graph_arg =
  Arg.(required & pos 0 (some file) None & info [] ~docv:"GRAPH" ~doc:"Graph file.")

let src_arg =
  Arg.(required & opt (some int) None & info [ "src" ] ~docv:"NODE" ~doc:"Source node.")

let dst_arg =
  Arg.(value & opt int 0 & info [ "dst" ] ~docv:"NODE" ~doc:"Destination (default: the access point 0).")

let seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

(* -- lcp -- *)

let lcp_cmd =
  let run path src dst =
    let g = read_graph path in
    match Unicast.run g ~src ~dst with
    | None -> (print_endline "unreachable"; 1)
    | Some r ->
      Format.printf "path: %a@.relay cost: %g@." Wnet_graph.Path.pp r.Unicast.path
        r.Unicast.lcp_cost;
      0
  in
  Cmd.v (Cmd.info "lcp" ~doc:"Least cost path between two nodes.")
    Term.(const run $ graph_arg $ src_arg $ dst_arg)

(* -- pay -- *)

let scheme_arg =
  let schemes = [ ("vcg", Payment_scheme.Vcg); ("neighbourhood", Payment_scheme.Neighbourhood) ] in
  Arg.(value & opt (enum schemes) Payment_scheme.Vcg
       & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Payment scheme: $(b,vcg) or $(b,neighbourhood).")

let pay_cmd =
  let run path src dst scheme =
    let g = read_graph path in
    match Payment_scheme.run scheme g ~src ~dst with
    | None -> (print_endline "unreachable"; 1)
    | Some r ->
      Format.printf "path: %a@.relay cost: %g@." Wnet_graph.Path.pp
        r.Payment_scheme.path r.Payment_scheme.lcp_cost;
      Array.iteri
        (fun v p -> if p <> 0.0 then Format.printf "pay node %d: %g@." v p)
        r.Payment_scheme.payments;
      Format.printf "total: %g@." (Payment_scheme.total_payment r);
      0
  in
  Cmd.v (Cmd.info "pay" ~doc:"VCG payments for a unicast.")
    Term.(const run $ graph_arg $ src_arg $ dst_arg $ scheme_arg)

(* -- batch -- *)

let domains_arg =
  Arg.(value & opt (some int) None
       & info [ "domains" ] ~docv:"K"
           ~doc:"Domain pool size (default: $(b,WNET_DOMAINS), else the \
                 recommended core count).  Results are identical for every \
                 value.")

let batch_cmd =
  let root =
    Arg.(value & opt int 0 & info [ "root" ] ~docv:"NODE" ~doc:"Access point.")
  in
  let run path root domains =
    let g = read_graph path in
    Wnet_par.with_pool ?domains (fun pool ->
        let batch = Unicast.all_to_root ~pool g ~root in
        let served = ref 0 and unbounded = ref 0 and charged = ref 0.0 in
        Array.iteri
          (fun src outcome ->
            match outcome with
            | None -> ()
            | Some r ->
              incr served;
              let p = Unicast.total_payment r in
              if p < infinity then charged := !charged +. p
              else incr unbounded;
              Format.printf "src %d: path %a, charge %g@." src
                Wnet_graph.Path.pp r.Unicast.path p)
          batch;
        Format.printf "served %d/%d sources on %d domain(s), total charges %g@."
          !served
          (Wnet_graph.Graph.n g - 1)
          (Wnet_par.size pool) !charged;
        if !unbounded > 0 then
          (* A cut-vertex relay has no replacement path: VCG payment is
             unbounded unless the graph is biconnected (Sec. III-G). *)
          Format.printf
            "%d source(s) with unbounded charge (cut-vertex relay) excluded \
             from the total@."
            !unbounded);
    0
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"All-to-access-point payments in one parallel batch.")
    Term.(const run $ graph_arg $ root $ domains_arg)

(* -- check -- *)

let check_cmd =
  let trials =
    Arg.(value & opt int 500 & info [ "trials" ] ~docv:"N" ~doc:"Falsifier trials.")
  in
  let run path src dst trials seed =
    let g = read_graph path in
    let truth = Wnet_graph.Graph.costs g in
    let m = Unicast.mechanism g ~src ~dst in
    let rng = Wnet_prng.Rng.create seed in
    let ic = Wnet_mech.Properties.random_ic_violations rng m ~truth ~trials ~lie_bound:100.0 in
    let ir = Wnet_mech.Properties.ir_violations m ~truth in
    Format.printf "incentive-compatibility violations: %d@." (List.length ic);
    List.iter (Format.printf "  %a@." Wnet_mech.Properties.pp_violation) ic;
    Format.printf "individual-rationality violations: %d@." (List.length ir);
    Format.printf "biconnected: %b@." (Wnet_graph.Connectivity.is_biconnected g);
    if ic = [] && ir = [] then 0 else 1
  in
  Cmd.v (Cmd.info "check" ~doc:"Run the strategyproofness falsifiers on an instance.")
    Term.(const run $ graph_arg $ src_arg $ dst_arg $ trials $ seed_arg)

(* -- distributed -- *)

let distributed_cmd =
  let root = Arg.(value & opt int 0 & info [ "root" ] ~docv:"NODE" ~doc:"Access point.") in
  let verify = Arg.(value & flag & info [ "verify" ] ~doc:"Algorithm 2 verification.") in
  let run path root verify =
    let g = read_graph path in
    let spt = Wnet_dsim.Spt_protocol.run ~verified:verify g ~root in
    Format.printf "stage 1: %d rounds, matches centralized: %b@."
      spt.Wnet_dsim.Spt_protocol.stats.Wnet_dsim.Engine.rounds
      (Wnet_dsim.Spt_protocol.matches_centralized spt g ~root);
    let pay = Wnet_dsim.Payment_protocol.run ~verify g ~root in
    Format.printf "stage 2: %d rounds, %d broadcasts, agrees with centralized: %b@."
      pay.Wnet_dsim.Payment_protocol.stats.Wnet_dsim.Engine.rounds
      pay.Wnet_dsim.Payment_protocol.stats.Wnet_dsim.Engine.broadcasts
      (Wnet_dsim.Payment_protocol.agrees_with_centralized pay g);
    Array.iteri
      (fun i table ->
        if table <> [] then begin
          Format.printf "node %d pays:" i;
          List.iter (fun (k, p) -> Format.printf " %d:%g" k p) table;
          Format.printf "@."
        end)
      pay.Wnet_dsim.Payment_protocol.payments;
    0
  in
  Cmd.v (Cmd.info "distributed" ~doc:"Run the distributed protocols on an instance.")
    Term.(const run $ graph_arg $ root $ verify)

(* -- experiment -- *)

let experiments ~instances ~seed ~csv ~pool name =
  let sweep_out ~title model =
    let points =
      Wnet_experiments.Fig3.overpayment_sweep ~instances ~pool ~seed model
    in
    if csv then
      print_endline (Wnet_stats.Table.to_csv (Wnet_experiments.Fig3.sweep_table points))
    else print_endline (Wnet_experiments.Fig3.render_sweep ~title points)
  in
  match name with
  | "fig3a" | "fig3b" ->
    sweep_out ~title:"Figure 3(a/b): UDG, kappa = 2"
      (Wnet_experiments.Fig3.Udg { kappa = 2.0 })
  | "fig3c" ->
    sweep_out ~title:"Figure 3(c): UDG, kappa = 2.5"
      (Wnet_experiments.Fig3.Udg { kappa = 2.5 })
  | "fig3d" ->
    let buckets =
      Wnet_experiments.Fig3.hop_profile ~instances ~pool ~seed
        (Wnet_experiments.Fig3.Udg { kappa = 2.0 })
    in
    if csv then
      print_endline (Wnet_stats.Table.to_csv (Wnet_experiments.Fig3.hop_table buckets))
    else
      print_endline
        (Wnet_experiments.Fig3.render_hop_profile
           ~title:"Figure 3(d): ratio vs hop distance (UDG, kappa = 2, n = 500)"
           buckets)
  | "fig3e" ->
    sweep_out ~title:"Figure 3(e): random ranges, kappa = 2"
      (Wnet_experiments.Fig3.Random_range { kappa = 2.0 })
  | "fig3f" ->
    sweep_out ~title:"Figure 3(f): random ranges, kappa = 2.5"
      (Wnet_experiments.Fig3.Random_range { kappa = 2.5 })
  | "node-model" ->
    print_endline
      (Wnet_experiments.Node_model.render
         ~title:"Ablation: node-cost model, uniform costs"
         (Wnet_experiments.Node_model.sweep ~instances ~pool ~seed ()))
  | "speed" ->
    print_endline (Wnet_experiments.Speed.render (Wnet_experiments.Speed.sweep ~seed ()))
  | "distributed" ->
    print_endline
      (Wnet_experiments.Distributed_exp.render
         (Wnet_experiments.Distributed_exp.sweep ~instances ~seed ()))
  | "collusion" ->
    print_endline
      (Wnet_experiments.Collusion_exp.render
         (Wnet_experiments.Collusion_exp.study ~instances ~pool ~seed ()))
  | "second-path" ->
    print_endline
      (Wnet_experiments.Second_path_exp.render
         (Wnet_experiments.Second_path_exp.study ~instances ~pool ~seed ()))
  | "agent-model" ->
    print_endline
      (Wnet_experiments.Agent_model_exp.render
         (Wnet_experiments.Agent_model_exp.sweep ~instances ~seed ()))
  | "relay-load" ->
    print_endline
      (Wnet_experiments.Relay_load.render
         (Wnet_experiments.Relay_load.study ~instances ~seed ()))
  | "lifetime" ->
    print_endline
      (Wnet_experiments.Lifetime_exp.render
         (Wnet_experiments.Lifetime_exp.study ~pool ~seed ()))
  | "scheme-ablation" ->
    print_endline
      (Wnet_experiments.Scheme_ablation.render
         (Wnet_experiments.Scheme_ablation.sweep ~instances ~seed ()))
  | "baselines" ->
    print_endline
      (Wnet_experiments.Baseline_exp.render_nuglet
         (Wnet_experiments.Baseline_exp.nuglet_sweep ~instances ~pool ~seed ()));
    print_newline ();
    print_endline
      (Wnet_experiments.Baseline_exp.render_watchdog
         (Wnet_experiments.Baseline_exp.watchdog_sweep ~instances ~pool ~seed ()))
  | name -> failwith ("unknown experiment " ^ name)

let experiment_cmd =
  let exp_name =
    Arg.(required & pos 0 (some string) None
         & info [] ~docv:"NAME"
             ~doc:"One of: fig3a fig3b fig3c fig3d fig3e fig3f node-model speed \
                   distributed collusion scheme-ablation baselines lifetime \
                   agent-model second-path relay-load.")
  in
  let instances =
    Arg.(value & opt int 10
         & info [ "instances" ] ~docv:"K" ~doc:"Random instances per point (paper: 100).")
  in
  let csv =
    Arg.(value & flag
         & info [ "csv" ] ~doc:"Emit CSV instead of tables (Figure 3 panels only).")
  in
  let run exp_name instances seed csv domains =
    Wnet_par.with_pool ?domains (fun pool ->
        experiments ~instances ~seed ~csv ~pool exp_name);
    0
  in
  Cmd.v (Cmd.info "experiment" ~doc:"Regenerate a paper figure or study.")
    Term.(const run $ exp_name $ instances $ seed_arg $ csv $ domains_arg)

(* -- report -- *)

let report_cmd =
  let instances =
    Arg.(value & opt int 10
         & info [ "instances" ] ~docv:"K" ~doc:"Instances per point (paper: 100).")
  in
  let out =
    Arg.(value & opt (some string) None
         & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  let run instances seed out =
    let report = Wnet_experiments.Report.generate ~instances ~seed () in
    (match out with
    | None -> print_string report
    | Some path ->
      Wnet_experiments.Report.save ~path report;
      Format.printf "wrote %s@." path);
    0
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:"Run every experiment and emit a single markdown reproduction report.")
    Term.(const run $ instances $ seed_arg $ out)

(* -- generate -- *)

let generate_cmd =
  let model =
    Arg.(value & opt string "udg"
         & info [ "model" ] ~docv:"MODEL"
             ~doc:"$(b,udg) (paper region, range 300m, uniform node costs) or \
                   $(b,gnp) (connected G(n, p)).")
  in
  let nodes = Arg.(value & opt int 100 & info [ "n" ] ~docv:"N" ~doc:"Node count.") in
  let run model n seed =
    let rng = Wnet_prng.Rng.create seed in
    let g =
      match model with
      | "udg" ->
        let t = Wnet_topology.Udg.paper_instance rng ~n in
        let costs = Wnet_topology.Udg.uniform_node_costs rng ~n ~lo:1.0 ~hi:10.0 in
        Wnet_topology.Udg.node_graph t ~costs
      | "gnp" ->
        Wnet_topology.Gnp.connected_graph rng ~n ~p:(4.0 /. float_of_int (max n 1))
          ~cost_lo:1.0 ~cost_hi:10.0
      | other -> failwith ("unknown model " ^ other)
    in
    print_string (Wnet_graph.Graph_io.to_string g);
    0
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Emit a random instance in the graph file format (to stdout).")
    Term.(const run $ model $ nodes $ seed_arg)

(* -- stats -- *)

let stats_cmd =
  let run path =
    let g = read_graph path in
    Format.printf "%a@." Wnet_graph.Metrics.pp (Wnet_graph.Metrics.compute g);
    Format.printf "degree histogram:";
    List.iter
      (fun (d, c) -> Format.printf " %d:%d" d c)
      (Wnet_graph.Metrics.degree_histogram g);
    Format.printf "@.";
    0
  in
  Cmd.v (Cmd.info "stats" ~doc:"Topology statistics of a graph file.")
    Term.(const run $ graph_arg)

(* -- serve -- *)

(* Line-oriented session protocol over stdin/stdout.  One incremental
   payment session stays alive across commands, so an access point can
   absorb cost drift and churn without re-running full batches: each
   `pay` reuses every avoidance Dijkstra the edits since the previous
   `pay` could not have touched. *)

let serve_loop handle =
  let rec loop () =
    match In_channel.input_line In_channel.stdin with
    | None -> ()
    | Some line ->
      let words =
        String.split_on_char ' ' (String.trim line)
        |> List.filter (fun s -> s <> "")
      in
      (match words with
      | [] -> loop ()
      | [ "quit" ] | [ "exit" ] -> ()
      | w ->
        (try handle w with
        | Failure m | Invalid_argument m -> Format.printf "err %s@." m);
        loop ())
  in
  loop ()

let serve_pay_summary ~served ~unbounded ~charged =
  Format.printf "ok served=%d unbounded=%d total=%g@." served unbounded charged

let serve_node ~pool ~root g =
  let module S = Wnet_session.Node_session in
  let s = S.create ~pool g ~root in
  Format.printf "ready model=node n=%d root=%d domains=%d@." (S.n s) root
    (Wnet_par.size pool);
  serve_loop (fun words ->
      match words with
      | [ "cost"; k; c ] ->
        S.set_cost s (int_of_string k) (float_of_string c);
        Format.printf "ok version=%d@." (S.version s)
      | [ "leave"; k ] ->
        S.remove_node s (int_of_string k);
        Format.printf "ok version=%d@." (S.version s)
      | [ "pay" ] ->
        let results = S.payments s in
        let served = ref 0 and unbounded = ref 0 and charged = ref 0.0 in
        Array.iteri
          (fun src outcome ->
            match outcome with
            | None -> ()
            | Some (o : S.outcome) ->
              incr served;
              let p = Array.fold_left ( +. ) 0.0 o.S.payments in
              if p < infinity then charged := !charged +. p else incr unbounded;
              Format.printf "src %d: path %a, charge %g@." src
                Wnet_graph.Path.pp o.S.path p)
          results;
        serve_pay_summary ~served:!served ~unbounded:!unbounded ~charged:!charged
      | [ "stats" ] ->
        let st = S.stats s in
        Format.printf "ok edits=%d spt_runs=%d avoid_runs=%d avoid_reused=%d@."
          st.S.edits st.S.spt_runs st.S.avoid_runs st.S.avoid_reused
      | w -> Format.printf "err unknown command: %s@." (String.concat " " w))

let serve_link ~pool ~root g =
  let module S = Wnet_session.Link_session in
  let s = S.create ~pool g ~root in
  let parse_link tok =
    match String.split_on_char ':' tok with
    | [ v; w ] -> (int_of_string v, float_of_string w)
    | _ -> failwith ("bad link " ^ tok ^ " (want node:weight)")
  in
  Format.printf "ready model=link n=%d root=%d domains=%d@." (S.n s) root
    (Wnet_par.size pool);
  serve_loop (fun words ->
      match words with
      | [ "cost"; u; v; w ] ->
        S.set_cost s (int_of_string u) (int_of_string v) (float_of_string w);
        Format.printf "ok version=%d@." (S.version s)
      | "join" :: rest ->
        (* join v:w ... -- u:w ...   (out-links, then in-links) *)
        let rec split acc = function
          | [] -> (List.rev acc, [])
          | "--" :: tl -> (List.rev acc, tl)
          | hd :: tl -> split (hd :: acc) tl
        in
        let out, inn = split [] rest in
        let id =
          S.add_node s ~out:(List.map parse_link out)
            ~inn:(List.map parse_link inn)
        in
        Format.printf "ok node=%d version=%d@." id (S.version s)
      | "rejoin" :: k :: rest ->
        (* rejoin K v:w ... -- u:w ...   (a node [leave]d earlier returns) *)
        let rec split acc = function
          | [] -> (List.rev acc, [])
          | "--" :: tl -> (List.rev acc, tl)
          | hd :: tl -> split (hd :: acc) tl
        in
        let out, inn = split [] rest in
        S.rejoin_node s (int_of_string k) ~out:(List.map parse_link out)
          ~inn:(List.map parse_link inn);
        Format.printf "ok version=%d@." (S.version s)
      | [ "leave"; k ] ->
        S.remove_node s (int_of_string k);
        Format.printf "ok version=%d@." (S.version s)
      | [ "pay" ] ->
        let batch = S.payments s in
        let served = ref 0 and unbounded = ref 0 and charged = ref 0.0 in
        Array.iteri
          (fun src outcome ->
            match outcome with
            | None -> ()
            | Some (o : S.outcome) ->
              incr served;
              let p = Array.fold_left ( +. ) 0.0 o.S.payments in
              if p < infinity then charged := !charged +. p else incr unbounded;
              Format.printf "src %d: path %a, charge %g@." src
                Wnet_graph.Path.pp o.S.path p)
          batch.S.results;
        serve_pay_summary ~served:!served ~unbounded:!unbounded ~charged:!charged
      | [ "stats" ] ->
        let st = S.stats s in
        Format.printf "ok edits=%d spt_runs=%d avoid_runs=%d avoid_reused=%d@."
          st.S.edits st.S.spt_runs st.S.avoid_runs st.S.avoid_reused
      | w -> Format.printf "err unknown command: %s@." (String.concat " " w))

let serve_cmd =
  let root =
    Arg.(value & opt int 0 & info [ "root" ] ~docv:"NODE" ~doc:"Access point.")
  in
  let model =
    Arg.(value & opt string "node"
         & info [ "model" ] ~docv:"MODEL"
             ~doc:"$(b,node) (Sec. II node costs: cost k c / leave k / pay) or \
                   $(b,link) (Sec. III-F directed link costs: cost u v w / \
                   join v:w .. -- u:w .. / leave k / pay).")
  in
  let run path root model domains =
    Wnet_par.with_pool ?domains (fun pool ->
        match model with
        | "node" -> serve_node ~pool ~root (read_graph path)
        | "link" ->
          serve_link ~pool ~root (Wnet_graph.Graph_io.parse_digraph_file path)
        | other -> failwith ("unknown model " ^ other));
    0
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Incremental payment session over stdin/stdout: apply cost \
             changes and churn, re-collect payments without full batches.")
    Term.(const run $ graph_arg $ root $ model $ domains_arg)

(* -- format -- *)

let format_cmd =
  let run () =
    print_endline "Graph file format (one declaration per line, # comments):";
    print_endline "  node <id> <cost>     declare a node and its relay cost";
    print_endline "  edge <u> <v>         undirected radio link";
    print_endline "  link <u> <v> <w>     directed link with power cost (digraph format)";
    print_endline "";
    print_endline "Example (the paper's Figure 2 network):";
    print_string
      (Wnet_graph.Graph_io.to_string Examples.fig2.Examples.graph);
    0
  in
  Cmd.v (Cmd.info "format" ~doc:"Describe the graph file format.") Term.(const run $ const ())

let () =
  let doc = "Truthful low-cost unicast in selfish wireless networks (IPDPS 2004)" in
  let info = Cmd.info "unicast" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval'
       (Cmd.group info
          [
            lcp_cmd; pay_cmd; batch_cmd; check_cmd; distributed_cmd; experiment_cmd;
            report_cmd; generate_cmd; stats_cmd; format_cmd; serve_cmd;
          ]))
